"""Tests for the structured allocation-tracing layer (repro.trace).

Covers the zero-cost null default, event capture across every event
type, the Figure-1 golden event sequences (leaning on the determinism
guarantee), sink round-trips, and the property that tracing never
changes allocation output.
"""

import json
import re

import pytest

from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.spill_code import _boundary_case
from repro.core.summary import MEM
from repro.ir import format_function
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function, prepare
from repro.trace import (
    BOUNDARY_ACTIONS,
    AllocationTracer,
    BoundaryAction,
    ChromeTraceSink,
    JSONLSink,
    MemorySink,
    NULL_TRACER,
    PreferenceApplied,
    PseudoBound,
    SpillDecision,
    StageTiming,
    TileColored,
    render_report,
)
from repro.trace.sinks import event_to_dict
from repro.workloads.figure1 import FIGURE1_REGISTERS, figure1
from repro.workloads.kernels import dot, nested_cond


def traced_run(fn, registers=FIGURE1_REGISTERS, config=None):
    """Allocate *fn* with an in-memory tracer; return (allocator, sink)."""
    memory = MemorySink()
    allocator = HierarchicalAllocator(
        config, tracer=AllocationTracer([memory])
    )
    allocator.allocate(prepare(fn), Machine.simple(registers))
    return allocator, memory


def tile_index(allocator):
    """Preorder index per tile id -- normalizes the process-global ids."""
    return {
        t.tid: i for i, t in enumerate(allocator.last_context.tree.preorder())
    }


class TestNullTracer:
    def test_default_is_shared_null(self):
        allocator = HierarchicalAllocator()
        assert allocator.tracer is NULL_TRACER
        assert not allocator.tracer.enabled

    def test_null_is_inert(self):
        NULL_TRACER.emit(object())
        NULL_TRACER.count("anything", 3)
        assert NULL_TRACER.counters() == {}
        NULL_TRACER.close()

    def test_context_carries_null_by_default(self):
        allocator = HierarchicalAllocator()
        allocator.allocate(prepare(figure1()), Machine.simple(4))
        assert allocator.last_context.tracer is NULL_TRACER


class TestEventCapture:
    def test_every_event_type_appears_on_figure1(self):
        _, memory = traced_run(figure1())
        seen = {type(e) for e in memory.events}
        assert {
            TileColored, SpillDecision, BoundaryAction,
            PreferenceApplied, PseudoBound, StageTiming,
        } <= seen

    def test_both_phases_color_every_tile(self):
        allocator, memory = traced_run(figure1())
        tiles = len(allocator.last_context.tree)
        for phase in ("phase1", "phase2"):
            colored = [
                e for e in memory.of_type(TileColored) if e.phase == phase
            ]
            assert len(colored) == tiles

    def test_counters_match_events(self):
        memory = MemorySink()
        tracer = AllocationTracer([memory])
        allocator = HierarchicalAllocator(tracer=tracer)
        allocator.allocate(prepare(figure1()), Machine.simple(4))
        counters = tracer.counters()
        assert counters["events.TileColored"] == len(
            memory.of_type(TileColored)
        )
        assert counters["events.BoundaryAction"] == len(
            memory.of_type(BoundaryAction)
        )
        for action in BOUNDARY_ACTIONS:
            emitted = sum(
                1 for e in memory.of_type(BoundaryAction)
                if e.action == action
            )
            assert counters.get(f"boundary.{action}", 0) == emitted

    def test_candidate_metrics_present(self):
        _, memory = traced_run(figure1())
        body = [
            e for e in memory.of_type(TileColored)
            if e.phase == "phase1" and e.kind == "body"
        ]
        assert len(body) == 1
        metrics = body[0].candidates
        # The body tile sees the paper's named variables with their
        # section-4 quantities.
        for var in ("g1", "g2", "n", "one"):
            assert var in metrics
            assert metrics[var].weight >= 0.0
        assert metrics["n"].transfer > 0  # live across both loop boundaries


class TestFigure1Golden:
    """Exact expected sequences -- valid because allocation (and hence
    the non-timing event stream) is bit-deterministic."""

    def test_spill_decision_sequence(self):
        allocator, memory = traced_run(figure1())
        idx = tile_index(allocator)
        got = [
            (idx[e.tile_id], e.phase, e.var, e.reason)
            for e in memory.of_type(SpillDecision)
        ]
        assert got == [
            (1, "phase1", "g2", "no_color"),
            (1, "phase1", "i1", "no_color"),
            (2, "phase2", "g1", "no_color"),
            (3, "phase2", "n", "no_color"),
        ]

    def test_boundary_action_sequence(self):
        _, memory = traced_run(figure1())
        got = [
            (e.edge, e.var, e.action)
            for e in memory.of_type(BoundaryAction)
        ]
        assert got == [
            (("B1", "B2"), "g1", "no_change"),
            (("B1", "B2"), "g2", "no_change"),
            (("B1", "B2"), "i1", "reload"),
            (("B1", "B2"), "n", "spill"),
            (("B1", "B2"), "one", "no_change"),
            (("B2", "MID"), "g1", "no_change"),
            (("B2", "MID"), "g2", "no_change"),
            (("B2", "MID"), "n", "spill"),
            (("B2", "MID"), "one", "no_change"),
            (("MID", "B3"), "g1", "spill"),
            (("MID", "B3"), "g2", "reload"),
            (("MID", "B3"), "i2", "no_change"),
            (("MID", "B3"), "one", "no_change"),
            (("B3", "B4"), "g1", "spill"),
            (("B3", "B4"), "g2", "reload"),
            (("start", "B1"), "n", "no_change"),
        ]

    def test_paper_prescription_on_second_loop(self):
        # Figure 1's point: g1 spilled *around* the loop that doesn't use
        # it, g2 reloaded *into* the loop that does.
        _, memory = traced_run(figure1())
        entry = {
            (e.var, e.action)
            for e in memory.of_type(BoundaryAction)
            if e.entering and e.edge == ("MID", "B3")
        }
        assert ("g1", "spill") in entry
        assert ("g2", "reload") in entry

    def test_repeat_run_identical_modulo_timings(self):
        # Tile ids are process-global, so both the id fields and the
        # pseudo-register / summary names embedding them (``t8.p0``,
        # ``ts:8:...``) must be normalized before comparing runs.
        def normalized():
            allocator, memory = traced_run(figure1())
            idx = tile_index(allocator)
            out = []
            for e in memory.events:
                if isinstance(e, StageTiming):
                    continue  # the only nondeterministic event type
                d = event_to_dict(e)
                for key in ("tile_id", "parent_tile", "child_tile"):
                    if key in d:
                        d[key] = idx[d[key]]
                text = json.dumps(d, sort_keys=True)
                text = re.sub(
                    r"ts:(\d+):",
                    lambda m: f"ts:{idx[int(m.group(1))]}:",
                    text,
                )
                text = re.sub(
                    r"\bt(\d+)\.p",
                    lambda m: f"t{idx[int(m.group(1))]}.p",
                    text,
                )
                out.append(text)
            # Operand temporaries embed instruction uids, which are also
            # process-global; uids grow in program order, so ranking them
            # gives a stable dense renumbering.
            uids = sorted(
                {int(m) for t in out for m in re.findall(r"tmp:(\d+):", t)}
            )
            rank = {uid: i for i, uid in enumerate(uids)}
            return [
                re.sub(
                    r"tmp:(\d+):",
                    lambda m: f"tmp:{rank[int(m.group(1))]}:",
                    t,
                )
                for t in out
            ]

        assert normalized() == normalized()


class TestBoundaryCase:
    def test_all_four_cases(self):
        assert _boundary_case("R0", "R0") == "no_change"
        assert _boundary_case(MEM, MEM) == "no_change"
        assert _boundary_case("R0", MEM) == "spill"
        assert _boundary_case("R0", "R1") == "transfer"
        assert _boundary_case(MEM, "R1") == "reload"

    def test_names_are_the_declared_vocabulary(self):
        assert set(BOUNDARY_ACTIONS) == {
            "spill", "transfer", "reload", "no_change"
        }


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        memory = MemorySink()
        tracer = AllocationTracer([memory, JSONLSink(str(path))])
        allocator = HierarchicalAllocator(tracer=tracer)
        allocator.allocate(prepare(figure1()), Machine.simple(4))
        tracer.close()

        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(memory.events)
        decoded = [json.loads(line) for line in lines]
        assert [d["type"] for d in decoded] == [
            type(e).__name__ for e in memory.events
        ]
        # JSON round-trips the full payload (tuples become lists).
        boundary = [d for d in decoded if d["type"] == "BoundaryAction"]
        assert boundary and all(
            d["action"] in BOUNDARY_ACTIONS for d in boundary
        )

    def test_chrome_trace_on_parallel_run(self, tmp_path):
        path = tmp_path / "sched.json"
        tracer = AllocationTracer([ChromeTraceSink(str(path))])
        config = HierarchicalConfig(
            parallel=True, parallel_workers=2, parallel_min_tiles=1
        )
        allocator = HierarchicalAllocator(config, tracer=tracer)
        allocator.allocate(prepare(nested_cond()), Machine.simple(4))
        tracer.close()

        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert metadata and complete
        # One named row per thread that emitted a timing.
        assert {m["name"] for m in metadata} == {"thread_name"}
        tile_tasks = [e for e in complete if e["cat"] == "tile"]
        assert tile_tasks
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)

    def test_memory_sink_of_type(self):
        _, memory = traced_run(figure1())
        both = memory.of_type(SpillDecision, BoundaryAction)
        assert len(both) == len(memory.of_type(SpillDecision)) + len(
            memory.of_type(BoundaryAction)
        )


class TestReport:
    def test_report_contains_metrics_and_cases(self):
        allocator, memory = traced_run(figure1())
        text = render_report(
            memory.events,
            tree_text=allocator.last_context.tree.format(),
        )
        for column in ("Local_weight", "Transfer", "Weight", "Reg", "Mem"):
            assert column in text
        for case in BOUNDARY_ACTIONS:
            assert case in text  # case totals name all four
        assert "Case totals:" in text

    def test_report_empty_stream(self):
        assert render_report([]).startswith("# ")


WORKLOADS = [
    ("figure1", figure1, FIGURE1_REGISTERS),
    ("dot", dot, 3),
    ("nested_cond", nested_cond, 4),
]


class TestTracingIsObservational:
    """Property: enabling tracing never changes allocation output."""

    @pytest.mark.parametrize(
        "name,factory,registers", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    @pytest.mark.parametrize("parallel", [False, True], ids=["seq", "par"])
    def test_traced_equals_untraced(self, name, factory, registers, parallel):
        config = HierarchicalConfig(
            parallel=parallel, parallel_workers=2 if parallel else None
        )

        def fingerprint(tracer):
            allocator = HierarchicalAllocator(config, tracer=tracer)
            allocator.allocate(prepare(factory()), Machine.simple(registers))
            out = allocator.last_context.fn
            idx = tile_index(allocator)  # tile ids are process-global
            spilled = {
                idx[tid]: sorted(
                    v for v, loc in alloc.phys.items() if loc == MEM
                )
                for tid, alloc in allocator.last_allocations.items()
            }
            return format_function(out), spilled

        traced = fingerprint(AllocationTracer([MemorySink()]))
        untraced = fingerprint(None)
        assert traced == untraced

    def test_pipeline_fingerprint_equal(self):
        # End to end through compile_function (differentially verified).
        def run(tracer):
            result = compile_function(
                Workload(figure1(), args={"n": 6}, name="figure1"),
                HierarchicalAllocator(),
                Machine.simple(FIGURE1_REGISTERS),
                tracer=tracer,
            )
            return (
                format_function(result.fn),
                result.allocated_run.spill_memory_refs,
                result.moves,
            )

        tracer = AllocationTracer([MemorySink()])
        assert run(tracer) == run(None)
        # The pipeline stages themselves were traced.
        stage_names = {
            e.name for e in tracer.sinks[0].of_type(StageTiming)
        }
        assert "pipeline:allocate" in stage_names
