"""Tests for dominator and post-dominator computation."""

import pytest

from repro.analysis.dominators import (
    compute_dominators,
    compute_idoms,
    compute_postdominators,
)


class TestGenericIdoms:
    def test_straight_line(self):
        succs = {"a": ["b"], "b": ["c"], "c": []}
        tree = compute_idoms("a", succs)
        assert tree.idom == {"a": "a", "b": "a", "c": "b"}

    def test_diamond(self):
        succs = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        tree = compute_idoms("a", succs)
        assert tree.idom["d"] == "a"
        assert tree.idom["b"] == "a"
        assert tree.idom["c"] == "a"

    def test_loop(self):
        succs = {"a": ["h"], "h": ["b", "x"], "b": ["h"], "x": []}
        tree = compute_idoms("a", succs)
        assert tree.idom["b"] == "h"
        assert tree.idom["x"] == "h"

    def test_unreachable_ignored(self):
        succs = {"a": ["b"], "b": [], "z": ["a"]}
        tree = compute_idoms("a", succs)
        assert "z" not in tree.idom

    def test_dominates_reflexive_and_transitive(self):
        succs = {"a": ["b"], "b": ["c"], "c": []}
        tree = compute_idoms("a", succs)
        assert tree.dominates("a", "a")
        assert tree.dominates("a", "c")
        assert tree.strictly_dominates("a", "c")
        assert not tree.strictly_dominates("a", "a")
        assert not tree.dominates("c", "a")

    def test_children_and_depth(self):
        succs = {"a": ["b", "c"], "b": [], "c": []}
        tree = compute_idoms("a", succs)
        assert set(tree.children("a")) == {"b", "c"}
        assert tree.depth("a") == 0
        assert tree.depth("b") == 1

    def test_walk_up(self):
        succs = {"a": ["b"], "b": ["c"], "c": []}
        tree = compute_idoms("a", succs)
        assert list(tree.walk_up("c")) == ["c", "b", "a"]

    def test_irreducible_region(self):
        # a -> b, a -> c, b <-> c: neither b nor c dominates the other.
        succs = {"a": ["b", "c"], "b": ["c"], "c": ["b"]}
        tree = compute_idoms("a", succs)
        assert tree.idom["b"] == "a"
        assert tree.idom["c"] == "a"


class TestFunctionDominators:
    def test_loop_fn(self, loop_fn):
        dom = compute_dominators(loop_fn)
        assert dom.idom["head"] == "entry"
        assert dom.idom["body"] == "head"
        assert dom.idom["done"] == "head"
        assert dom.dominates("head", "body")

    def test_postdominators(self, loop_fn):
        pdom = compute_postdominators(loop_fn)
        assert pdom.root == loop_fn.stop_label
        assert pdom.dominates("head", "body")  # body always returns to head
        assert pdom.dominates("done", "head")

    def test_diamond_postdominators(self, diamond_fn):
        pdom = compute_postdominators(diamond_fn)
        assert pdom.idom["then"] == "join"
        assert pdom.idom["els"] == "join"
        assert pdom.dominates("join", "entry")

    def test_every_node_dominated_by_start(self, loop_fn, diamond_fn):
        for fn in (loop_fn, diamond_fn):
            dom = compute_dominators(fn)
            for label in fn.blocks:
                assert dom.dominates(fn.start_label, label)
