"""Tests for small helpers across modules (summary names, loop utilities,
printer block rendering, execution-result accounting)."""

import pytest

from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import back_edges, build_loop_forest
from repro.core.summary import (
    TileAllocation,
    is_summary_var,
    is_temp_node,
    parse_temp_node,
    summary_var_name,
    temp_node_name,
)
from repro.ir.printer import format_block
from repro.machine.simulator import simulate
from repro.workloads.kernels import dot, matmul


class TestSummaryNames:
    def test_summary_var_round_trip(self):
        name = summary_var_name(7, "t7.p2")
        assert is_summary_var(name)
        assert not is_temp_node(name)

    def test_temp_node_round_trip(self):
        name = temp_node_name(123, "g1", "u")
        assert is_temp_node(name)
        assert parse_temp_node(name) == (123, "g1", "u")

    def test_temp_node_with_colons_in_var(self):
        name = temp_node_name(5, "csv:4", "d")
        uid, var, kind = parse_temp_node(name)
        assert (uid, var, kind) == (5, "csv:4", "d")

    def test_real_variables_are_neither(self):
        assert not is_summary_var("g1")
        assert not is_temp_node("g1")

    def test_describe_renders(self):
        alloc = TileAllocation(tile_id=3)
        alloc.assignment = {"a": "p0"}
        alloc.spilled = {"b"}
        text = alloc.describe()
        assert "a -> p0" in text
        assert "b -> MEMORY" in text

    def test_colors_in_use(self):
        alloc = TileAllocation(tile_id=1)
        alloc.assignment = {"a": "p0", "b": "p1", "c": "p0"}
        assert alloc.colors_in_use() == {"p0", "p1"}


class TestBackEdges:
    def test_loop_back_edge(self, loop_fn):
        dom = compute_dominators(loop_fn)
        edges = back_edges(loop_fn, dom)
        assert edges == [("body", "head")]

    def test_matmul_three_back_edges(self):
        fn = matmul()
        dom = compute_dominators(fn)
        edges = back_edges(fn, dom)
        assert len(edges) == 3
        assert all(dst in ("ih", "jh", "kh") for _, dst in edges)

    def test_acyclic_has_none(self, diamond_fn):
        dom = compute_dominators(diamond_fn)
        assert back_edges(diamond_fn, dom) == []


class TestLoopForestExtras:
    def test_own_blocks_of_leaf(self, loop_fn):
        forest = build_loop_forest(loop_fn)
        loop = forest.loops[0]
        assert loop.own_blocks() == {"head", "body"}

    def test_forest_iteration(self):
        forest = build_loop_forest(matmul())
        assert len(list(iter(forest))) == 3


class TestPrinterBlocks:
    def test_format_block(self, loop_fn):
        text = format_block(loop_fn.blocks["head"])
        assert text.startswith("head:")
        assert "cmplt" in text
        assert "-> body, done" in text

    def test_format_block_no_succs(self, loop_fn):
        text = format_block(loop_fn.blocks[loop_fn.stop_label])
        assert "->" not in text


class TestExecutionAccounting:
    def test_cost_weights(self):
        result = simulate(dot(), args={"n": 2}, arrays={"A": [1, 1], "B": [1, 1]})
        assert result.cost(load_cost=2.0, store_cost=3.0) == 0.0
        assert result.total_memory_refs == result.program_memory_refs

    def test_steps_counted(self):
        result = simulate(dot(), args={"n": 1}, arrays={"A": [1], "B": [1]})
        assert result.steps == sum(result.opcode_counts.values())

    def test_scratch_refs_default_zero(self):
        result = simulate(dot(), args={"n": 1}, arrays={"A": [1], "B": [1]})
        assert result.scratch_refs == 0


class TestDomTreeIntervals:
    def test_o1_dominates_matches_walk(self):
        """The Euler-tour intervals agree with explicit idom-chain walks."""
        fn = matmul()
        dom = compute_dominators(fn)

        def walk_dominates(a, b):
            node = b
            while True:
                if node == a:
                    return True
                parent = dom.idom[node]
                if parent == node:
                    return False
                node = parent

        labels = list(dom.idom)
        for a in labels:
            for b in labels:
                assert dom.dominates(a, b) == walk_dominates(a, b), (a, b)
