"""Property tests for the content-addressed allocation cache.

Covers the serialization format (round-trip, version rejection), the LRU
and disk layers, the invalidation key (semantic config changes miss,
scheduling-only changes hit), single-function invalidation, and the
cold-vs-warm bit-identity guarantee across ``PYTHONHASHSEED`` values.
"""

import pytest

from repro.analysis.frequency import estimate_frequencies
from repro.batch import (
    FORMAT_VERSION,
    AllocationCache,
    BatchConfig,
    BatchEngine,
    function_fingerprint,
    invalidation_key,
    synthetic_module,
)
from repro.batch.serialize import (
    AllocationRecord,
    UncacheableConfigError,
    config_signature,
    dumps_record,
    loads_record,
    record_to_dict,
)
from repro.core import HierarchicalConfig
from repro.determinism import fingerprint_in_subprocess
from repro.machine.target import Machine
from repro.pipeline import Workload
from repro.workloads.generators import random_program
from repro.workloads.kernels import dot


def make_record(i=0, name="fn"):
    return AllocationRecord(
        version=FORMAT_VERSION,
        function=name,
        fingerprint=f"fp{i:04d}",
        blocks=3,
        allocated_sha256="a" * 64,
        allocated_text="func fn() {\n}\n",
        spilled=("v1", "v2"),
        bindings=(("t0:v1", "r0"), ("t1:v2", "r1")),
        static_costs={"spill_loads": 1, "spill_stores": 2, "moves": 0},
        costs={"spill_loads": 1, "spill_stores": 2, "moves": 0,
               "program_refs": 5},
        returned=[1, 2],
    )


class TestSerialization:
    def test_round_trip_is_identity(self):
        record = make_record()
        assert loads_record(dumps_record(record)) == record

    def test_tuple_return_normalizes_to_list(self):
        import dataclasses

        record = dataclasses.replace(make_record(), returned=(1, (2, 3)))
        assert loads_record(dumps_record(record)).returned == [1, [2, 3]]

    def test_version_mismatch_rejected(self):
        payload = record_to_dict(make_record())
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            from repro.batch.serialize import record_from_dict

            record_from_dict(payload)

    def test_dumps_is_canonical(self):
        # Bit-stable text: the same record always serializes identically
        # (the property that makes the disk layer shareable).
        record = make_record()
        assert dumps_record(record) == dumps_record(make_record())


class TestLRU:
    def test_eviction_at_capacity(self):
        cache = AllocationCache(capacity=2)
        for i in range(3):
            cache.put(f"k{i}", make_record(i))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("k0") is None
        assert cache.stats.misses == 1
        assert cache.get("k2") is not None

    def test_get_refreshes_recency(self):
        cache = AllocationCache(capacity=2)
        cache.put("k0", make_record(0))
        cache.put("k1", make_record(1))
        cache.get("k0")  # k1 is now least recent
        cache.put("k2", make_record(2))
        assert cache.get("k0") is not None
        assert cache.get("k1") is None

    def test_source_of_does_not_touch_counters(self):
        cache = AllocationCache(capacity=2)
        cache.put("k0", make_record(0))
        assert cache.source_of("k0") == "memory"
        assert cache.source_of("nope") is None
        assert cache.stats.hits == 0 and cache.stats.misses == 0


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        record = make_record()
        first = AllocationCache(capacity=4, cache_dir=str(tmp_path))
        first.put("abcd", record)
        assert first.stats.disk_writes == 1

        fresh = AllocationCache(capacity=4, cache_dir=str(tmp_path))
        assert fresh.source_of("abcd") == "disk"
        assert fresh.get("abcd") == record
        assert fresh.stats.disk_hits == 1
        # The hit promoted the record into memory.
        assert fresh.source_of("abcd") == "memory"

    def test_memory_clear_keeps_disk(self, tmp_path):
        cache = AllocationCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("abcd", make_record())
        cache.clear_memory()
        assert cache.source_of("abcd") == "disk"
        assert cache.get("abcd") is not None

    def test_torn_record_treated_as_miss(self, tmp_path):
        cache = AllocationCache(capacity=4, cache_dir=str(tmp_path))
        path = cache._disk_path("abcd")
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.source_of("abcd") == "disk"
        assert cache.get("abcd") is None
        assert cache.stats.misses == 1


class TestInvalidationKey:
    MACHINE = Machine.simple(8)

    def test_stable_for_equal_inputs(self):
        assert invalidation_key(
            HierarchicalConfig(), self.MACHINE
        ) == invalidation_key(HierarchicalConfig(), self.MACHINE)

    def test_machine_change_invalidates(self):
        base = invalidation_key(HierarchicalConfig(), self.MACHINE)
        assert invalidation_key(
            HierarchicalConfig(), Machine.simple(4)
        ) != base

    def test_semantic_config_change_invalidates(self):
        base = invalidation_key(HierarchicalConfig(), self.MACHINE)
        assert invalidation_key(
            HierarchicalConfig(max_tile_width=4), self.MACHINE
        ) != base

    def test_prepare_options_invalidate(self):
        base = invalidation_key(HierarchicalConfig(), self.MACHINE)
        assert invalidation_key(
            HierarchicalConfig(), self.MACHINE, rename=False
        ) != base

    def test_scheduling_knobs_do_not_invalidate(self):
        # parallel/parallel_workers/parallel_min_tiles never change the
        # produced allocation (the determinism gate proves it), so they
        # must not fragment the cache.
        base = invalidation_key(HierarchicalConfig(), self.MACHINE)
        assert invalidation_key(
            HierarchicalConfig(
                parallel=True, parallel_workers=7, parallel_min_tiles=1
            ),
            self.MACHINE,
        ) == base

    def test_profile_guided_config_is_uncacheable(self):
        freq = estimate_frequencies(dot())
        with pytest.raises(UncacheableConfigError):
            config_signature(HierarchicalConfig(frequencies=freq))
        # The engine degrades to cache-off instead of risking stale hits.
        engine = BatchEngine(config=HierarchicalConfig(frequencies=freq))
        assert engine.cache is None


class TestInputsDigest:
    def test_empty_inputs_yield_empty_digest(self):
        from repro.batch.serialize import cache_key, inputs_digest

        assert inputs_digest({}, {}) == ""
        assert cache_key("fp", "inv", inputs_digest({}, {})) == "fp-inv"

    def test_different_inputs_key_differently(self):
        from repro.batch.serialize import cache_key, inputs_digest

        small = inputs_digest({"n": 2}, {"A": [1, 2]})
        large = inputs_digest({"n": 4}, {"A": [1, 2]})
        assert small and large and small != large
        assert cache_key("fp", "inv", small) != cache_key("fp", "inv", large)

    def test_digest_is_order_insensitive_and_stable(self):
        from repro.batch.serialize import inputs_digest

        a = inputs_digest({"n": 2, "m": 3}, {"A": [1], "B": [2]})
        b = inputs_digest({"m": 3, "n": 2}, {"B": [2], "A": [1]})
        assert a == b
        # Tuples and lists carry the same values, so they must collide.
        assert inputs_digest({}, {"A": (1, 2)}) == inputs_digest(
            {}, {"A": [1, 2]}
        )


class TestSingleFunctionInvalidation:
    def test_editing_one_function_misses_only_that_entry(self):
        module = synthetic_module(6)
        edited = list(module)
        replacement = random_program(
            seed=424_242, max_blocks=30, max_vars=10, max_depth=3
        )
        edited[2] = Workload(
            replacement, {"n": 2},
            {"A": [1] * 8, "B": [0] * 8},
            name=module[2].label(),
        )
        assert function_fingerprint(edited[2].fn) != function_fingerprint(
            module[2].fn
        )

        with BatchEngine(batch=BatchConfig()) as engine:
            engine.allocate_module(module)
            assert engine.stats.cache_hits == 0
            assert engine.stats.computed == len(module)

            engine.allocate_module(edited)
            assert engine.stats.cache_hits == len(module) - 1
            assert engine.stats.computed == len(module) + 1


class TestCrossSeedBitIdentity:
    def test_cold_and_warm_identical_across_hash_seeds(self):
        """Direct, cold-batch and warm-cache fingerprints are one value
        across PYTHONHASHSEED {0, 1, 12345} (fresh interpreter each)."""
        names = ["seq_loops_100"]
        runs = {
            seed: fingerprint_in_subprocess(
                names, seed, workers=0, batch_workers=0
            )
            for seed in ("0", "1", "12345")
        }
        base = runs["0"][names[0]]
        # fingerprint_workloads already asserts batch-cold == direct; the
        # cold/warm sections must also agree, across every seed.
        assert base["batch"]["cold"] == base["batch"]["warm"]
        for seed, run in runs.items():
            assert run[names[0]] == base, f"seed {seed} diverged"
