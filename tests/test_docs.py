"""Executable-documentation gates, run as part of tier 1.

Mirrors the CI docs job: the generated walkthrough must match a fresh
regeneration, documented code blocks must run, and PAPER_MAP anchors must
resolve.  The generator scripts run in fresh subprocesses because tile
ids come from a process-global counter -- a same-process regeneration
would renumber every tile.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_script(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = "0"
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_walkthrough_matches_regeneration():
    proc = run_script("docs/gen_walkthrough.py", "--check")
    assert proc.returncode == 0, (
        "docs/WALKTHROUGH.md has drifted from the allocator's behaviour; "
        "regenerate with `PYTHONPATH=src python docs/gen_walkthrough.py`.\n"
        + proc.stdout + proc.stderr
    )


def test_documented_code_blocks_execute():
    proc = run_script("docs/check_docs.py", "--only", "exec")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "walkthrough assertions passed" in proc.stdout


def test_paper_map_anchors_resolve():
    proc = run_script("docs/check_docs.py", "--only", "anchors")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_walkthrough_is_marked_generated():
    path = os.path.join(REPO_ROOT, "docs", "WALKTHROUGH.md")
    with open(path, encoding="utf-8") as fh:
        head = fh.read(300)
    assert "DO NOT EDIT BY HAND" in head
