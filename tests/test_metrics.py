"""Tests for the section-4 spill metrics."""

import pytest

from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.core.metrics import (
    compute_pre_metrics,
    finalize_metrics,
    not_worth_a_register,
)
from repro.core.summary import TileMetrics
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1


def make_ctx(fn, registers=4):
    build = build_tile_tree_detailed(fn.clone())
    return build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )


class TestLocalWeight:
    def test_counts_weighted_references(self):
        ctx = make_ctx(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        metrics = compute_pre_metrics(
            ctx, loop1, {"g1", "t1", "i1", "one", "g2"}, {}, []
        )
        # g1 is referenced 3x per iteration at frequency ~9.
        freq = ctx.block_freq("B2")
        assert metrics.local_weight["g1"] == pytest.approx(3 * freq)
        # g2 is never referenced in the loop.
        assert metrics.local_weight["g2"] == 0.0

    def test_transfer_counts_boundary_liveness(self):
        ctx = make_ctx(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        metrics = compute_pre_metrics(
            ctx, loop1, {"g1", "g2", "t1"}, {}, []
        )
        # g2 is live on both the entry and the exit edge of the loop tile.
        entry_exit_freq = sum(
            ctx.edge_freq(src, dst)
            for src, dst in ctx.tree.boundary_edges(loop1)
        )
        assert metrics.transfer["g2"] == pytest.approx(entry_exit_freq)
        # t1 is local: never live at the boundary.
        assert metrics.transfer["t1"] == 0.0

    def test_weight_is_local_weight_for_leaves(self):
        ctx = make_ctx(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        metrics = compute_pre_metrics(ctx, loop1, {"g1"}, {}, [])
        assert metrics.weight["g1"] == metrics.local_weight["g1"]


class TestRegMem:
    def test_reg_capped_by_transfer(self):
        metrics = TileMetrics(
            local_weight={"v": 100.0},
            transfer={"v": 2.0},
            weight={"v": 100.0},
        )
        finalize_metrics(metrics, {"v": "p0"}, set(), ["v"])
        assert metrics.reg["v"] == 2.0  # min(transfer, weight)
        assert metrics.mem["v"] == 0.0

    def test_mem_is_transfer_when_spilled(self):
        metrics = TileMetrics(
            local_weight={"v": 100.0},
            transfer={"v": 2.0},
            weight={"v": 100.0},
        )
        finalize_metrics(metrics, {}, {"v"}, ["v"])
        assert metrics.reg["v"] == 0.0
        assert metrics.mem["v"] == 2.0

    def test_negative_weight_propagates(self):
        metrics = TileMetrics(
            local_weight={"v": 0.0}, transfer={"v": 5.0}, weight={"v": -3.0}
        )
        finalize_metrics(metrics, {"v": "p0"}, set(), ["v"])
        assert metrics.reg["v"] == -3.0  # min(5, -3): disincentive


class TestNotWorthARegister:
    def test_rule(self):
        metrics = TileMetrics(transfer={"v": 2.0}, weight={"v": -3.0})
        assert not_worth_a_register(metrics, "v")
        metrics.weight["v"] = -1.0
        assert not not_worth_a_register(metrics, "v")

    def test_default_zero(self):
        assert not not_worth_a_register(TileMetrics(), "unknown")
