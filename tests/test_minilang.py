"""Tests for the MiniLang front end (lexer, parser, lowering)."""

import pytest

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.minilang import MiniLangError, compile_source, parse, tokenize
from repro.minilang import ast_nodes as ast
from repro.pipeline import Workload, compile_function


def run(src, args=None, arrays=None):
    fn = compile_source(src)
    validate_function(fn)
    return simulate(fn, args=args or {}, arrays=arrays or {})


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("func f(x) { return x <= 42; }")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "func", "ident", "(", "ident", ")", "{", "return", "ident",
            "<=", "int", ";", "}", "eof",
        ]

    def test_line_numbers(self):
        tokens = tokenize("func f()\n{\nreturn 1;\n}")
        ret = next(t for t in tokens if t.kind == "return")
        assert ret.line == 3

    def test_comments(self):
        tokens = tokenize("# comment\nfunc f() { // tail\nreturn 1; }")
        assert tokens[0].kind == "func"

    def test_maximal_munch(self):
        kinds = [t.kind for t in tokenize("a<=b==c&&d")]
        assert kinds == ["ident", "<=", "ident", "==", "ident", "&&",
                         "ident", "eof"]

    def test_bad_character(self):
        with pytest.raises(MiniLangError, match="line 2"):
            tokenize("func f() {\n  @  \n}")


class TestParser:
    def test_program_shape(self):
        prog = parse(tokenize("func f(a, b) { return a + b; }"))
        assert prog.name == "f"
        assert prog.params == ["a", "b"]
        assert isinstance(prog.body[0], ast.Return)

    def test_precedence(self):
        prog = parse(tokenize("func f() { return 1 + 2 * 3 < 4 && 5; }"))
        top = prog.body[0].value
        assert top.op == "&&"
        assert top.left.op == "<"
        assert top.left.left.op == "+"
        assert top.left.left.right.op == "*"

    def test_parentheses(self):
        result = run("func f() { return (1 + 2) * 3; }")
        assert result.returned == (9,)

    def test_else_if_chain(self):
        prog = parse(tokenize(
            "func f(x) { if (x < 0) { return 1; } else if (x == 0) "
            "{ return 2; } else { return 3; } }"
        ))
        outer = prog.body[0]
        assert isinstance(outer.else_body[0], ast.If)

    def test_missing_semicolon(self):
        with pytest.raises(MiniLangError, match="expected"):
            parse(tokenize("func f() { return 1 }"))

    def test_trailing_garbage(self):
        with pytest.raises(MiniLangError):
            parse(tokenize("func f() { return 1; } extra"))


class TestLowering:
    def test_arithmetic(self):
        assert run("func f() { return 7 % 3 + 10 / 4 - -2; }").returned == (5,)

    def test_unary_not(self):
        assert run("func f() { return !0 + !5; }").returned == (1,)

    def test_while_loop(self):
        result = run(
            "func f(n) { var s = 0; var i = 1; while (i <= n) "
            "{ s = s + i; i = i + 1; } return s; }",
            args={"n": 10},
        )
        assert result.returned == (55,)

    def test_nested_loops(self):
        result = run(
            """
            func f(n) {
                var total = 0;
                var i = 0;
                while (i < n) {
                    var j = 0;
                    while (j < n) {
                        total = total + i * j;
                        j = j + 1;
                    }
                    i = i + 1;
                }
                return total;
            }
            """,
            args={"n": 4},
        )
        assert result.returned == (36,)

    def test_break(self):
        result = run(
            "func f() { var i = 0; while (1) { i = i + 1; "
            "if (i == 7) { break; } } return i; }"
        )
        assert result.returned == (7,)

    def test_arrays(self):
        result = run(
            "func f(n) { var i = 0; while (i < n) "
            "{ B[i] = A[i] * 2; i = i + 1; } return B[0]; }",
            args={"n": 3}, arrays={"A": [4, 5, 6]},
        )
        assert result.returned == (8,)
        assert result.arrays["B"][2] == 12

    def test_intrinsic_call(self):
        assert run("func f(x) { return abs(x); }", args={"x": -9}).returned == (9,)

    def test_shadowing(self):
        result = run(
            """
            func f() {
                var x = 1;
                if (1) { var x = 100; B[0] = x; }
                return x;
            }
            """
        )
        assert result.returned == (1,)
        assert result.arrays["B"][0] == 100

    def test_implicit_return_zero(self):
        assert run("func f() { var x = 3; x = x + 1; }").returned == (0,)

    def test_if_both_arms_return(self):
        src = (
            "func f(x) { if (x < 0) { return 1; } else { return 2; } }"
        )
        assert run(src, args={"x": -5}).returned == (1,)
        assert run(src, args={"x": 5}).returned == (2,)

    def test_logical_ops_nonshortcircuit(self):
        assert run("func f() { return 1 && 2; }").returned == (1,)
        assert run("func f() { return 0 || 0; }").returned == (0,)


class TestSemanticErrors:
    def test_undeclared_variable(self):
        with pytest.raises(MiniLangError, match="undeclared"):
            compile_source("func f() { return y; }")

    def test_redeclaration(self):
        with pytest.raises(MiniLangError, match="already declared"):
            compile_source("func f() { var x = 1; var x = 2; return x; }")

    def test_out_of_scope(self):
        with pytest.raises(MiniLangError, match="undeclared"):
            compile_source(
                "func f() { if (1) { var x = 1; } return x; }"
            )

    def test_break_outside_loop(self):
        with pytest.raises(MiniLangError, match="break outside"):
            compile_source("func f() { break; }")

    def test_unreachable_after_return(self):
        with pytest.raises(MiniLangError, match="unreachable"):
            compile_source("func f() { return 1; var x = 2; }")

    def test_unreachable_after_break(self):
        with pytest.raises(MiniLangError, match="unreachable"):
            compile_source(
                "func f() { while (1) { break; var x = 1; } return 0; }"
            )


class TestFullPipeline:
    COLLATZ = """
    func collatz(x) {
        var steps = 0;
        while (x != 1) {
            if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
            steps = steps + 1;
        }
        return steps;
    }
    """

    def test_collatz(self):
        assert run(self.COLLATZ, args={"x": 27}).returned == (111,)

    @pytest.mark.parametrize(
        "allocator_cls", [HierarchicalAllocator, ChaitinAllocator]
    )
    @pytest.mark.parametrize("registers", [2, 4])
    def test_allocation_of_minilang_programs(self, allocator_cls, registers):
        fn = compile_source(self.COLLATZ)
        workload = Workload(fn, {"x": 27}, {}, name="collatz")
        result = compile_function(
            workload, allocator_cls(), Machine.simple(registers)
        )
        assert result.allocated_run.returned == (111,)

    def test_tile_tree_of_minilang_program(self):
        from repro.tiles import build_tile_tree, validate_tile_tree

        fn = compile_source(self.COLLATZ)
        tree = build_tile_tree(fn)
        validate_tile_tree(tree)
        kinds = [t.kind for t in tree.preorder()]
        assert "loop" in kinds
