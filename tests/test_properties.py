"""Property-based tests (hypothesis) over random structured programs.

These are the repository's strongest evidence: for arbitrary generated
programs, tile trees are legal, analyses satisfy their defining equations,
and every allocator is a semantics-preserving transformation whose output
respects the machine.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocators import BriggsAllocator, ChaitinAllocator, LocalAllocator
from repro.analysis.dominators import compute_dominators
from repro.analysis.frequency import estimate_frequencies
from repro.analysis.liveness import block_use_def, compute_liveness
from repro.analysis.renaming import rename_webs
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.graph.coloring import color_graph, verify_coloring
from repro.graph.interference import InterferenceGraph
from repro.ir.instructions import is_phys
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.tiles.construction import build_tile_tree_detailed
from repro.tiles.validate import validate_tile_tree
from repro.workloads.generators import random_program, random_workload

SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=SEEDS)
@COMMON
def test_generator_produces_valid_programs(seed):
    fn = random_program(seed)
    validate_function(fn)


@given(seed=SEEDS)
@COMMON
def test_generated_programs_execute(seed):
    w = random_workload(seed)
    result = simulate(w.fn, args=w.args, arrays=w.arrays)
    assert isinstance(result.returned, tuple)


@given(seed=SEEDS)
@COMMON
def test_tile_trees_always_legal(seed):
    fn = random_program(seed)
    build = build_tile_tree_detailed(fn)
    validate_tile_tree(build.tree)
    validate_function(fn)


@given(seed=SEEDS)
@COMMON
def test_dominator_invariants(seed):
    fn = random_program(seed)
    dom = compute_dominators(fn)
    for label in fn.blocks:
        if label not in dom.idom:
            continue
        assert dom.dominates(fn.start_label, label)
        parent = dom.idom[label]
        if label != fn.start_label:
            assert dom.strictly_dominates(parent, label)


@given(seed=SEEDS)
@COMMON
def test_liveness_fixed_point(seed):
    fn = random_program(seed)
    lv = compute_liveness(fn)
    for label, block in fn.blocks.items():
        uses, defs = block_use_def(block)
        assert lv.live_in[label] == frozenset(
            uses | (lv.live_out[label] - defs)
        )
        expected_out = frozenset().union(
            *(lv.live_in[s] for s in block.succ_labels)
        ) if block.succ_labels else frozenset()
        assert lv.live_out[label] == expected_out


@given(seed=SEEDS)
@COMMON
def test_renaming_preserves_behaviour(seed):
    w = random_workload(seed)
    renamed, reverse = rename_webs(w.fn)
    validate_function(renamed)
    a = simulate(w.fn, args=w.args, arrays=w.arrays)
    b = simulate(renamed, args=dict(w.args), arrays=w.arrays)
    assert a.returned == b.returned
    for new, old in reverse.items():
        assert new == old or new.split("%")[0] == old


@given(seed=SEEDS)
@COMMON
def test_frequency_flow_conservation(seed):
    fn = random_program(seed)
    freq = estimate_frequencies(fn)
    for label in fn.blocks:
        if label == fn.start_label:
            continue
        inflow = sum(f for (u, v), f in freq.edge_freq.items() if v == label)
        assert inflow == pytest.approx(freq.block_freq[label], rel=1e-5, abs=1e-7)


@given(
    seed=SEEDS,
    registers=st.sampled_from([2, 3, 4, 6]),
    allocator_cls=st.sampled_from(
        [HierarchicalAllocator, ChaitinAllocator, BriggsAllocator, LocalAllocator]
    ),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_allocation_preserves_semantics(seed, registers, allocator_cls):
    """The headline property: any allocator, any register count, any
    generated program -- observable behaviour is unchanged and the output
    touches only machine registers."""
    w = random_workload(seed)
    result = compile_function(w, allocator_cls(), Machine.simple(registers))
    assert result.reference_run.returned == result.allocated_run.returned
    for block in result.fn.blocks.values():
        for instr in block.instrs:
            for var in instr.defs + instr.uses:
                assert is_phys(var)


@given(seed=SEEDS)
@COMMON
def test_hierarchical_tile_colorings_valid(seed):
    """Within every tile, conflicting nodes get different registers."""
    from repro.core.summary import MEM

    w = random_workload(seed)
    allocator = HierarchicalAllocator()
    compile_function(w, allocator, Machine.simple(3))
    for alloc in allocator.last_allocations.values():
        for a, b in alloc.graph.edges():
            la, lb = alloc.phys.get(a), alloc.phys.get(b)
            if la not in (None, MEM) and lb not in (None, MEM):
                assert la != lb


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        max_size=40,
    ),
    k=st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_coloring_engine_validity(edges, k):
    """Random graphs: assignments returned by the engine never color two
    adjacent nodes the same."""
    g = InterferenceGraph()
    for a, b in edges:
        if a != b:
            g.add_edge(f"v{a}", f"v{b}")
    for a in range(12):
        g.add_node(f"v{a}")
    result = color_graph(
        g, k=k, color_order=[f"R{i}" for i in range(k)]
    )
    assert not verify_coloring(g, result.assignment)
    assert len(result.used_colors) <= k
    for node in g.nodes():
        assert (node in result.assignment) != (node in result.spilled)


@given(seed=SEEDS, n=st.integers(1, 6))
@COMMON
def test_spill_slots_isolated_per_variable(seed, n):
    """Differential run with distinct inputs: memory state must match, so
    slots can never be shared by live variables."""
    w = random_workload(seed)
    w.args = {"n": n}
    result = compile_function(w, HierarchicalAllocator(), Machine.simple(2))
    ref = result.reference_run
    out = result.allocated_run
    canon = lambda arrays: {
        name: {i: v for i, v in contents.items() if v != 0}
        for name, contents in arrays.items()
    }
    assert canon(ref.arrays) == canon(out.arrays)


@given(seed=SEEDS)
@COMMON
def test_minilang_fuzz_compiles_and_runs(seed):
    """Source-level fuzzing: every generated MiniLang program compiles,
    validates, terminates, and allocates correctly."""
    from repro.workloads.minilang_fuzz import random_minilang_workload

    w = random_minilang_workload(seed)
    validate_function(w.fn)
    result = compile_function(w, HierarchicalAllocator(), Machine.simple(3))
    assert result.allocated_run.returned == result.reference_run.returned


@given(seed=SEEDS)
@COMMON
def test_minilang_fuzz_optimizer_agrees(seed):
    """The optimizer must not change a fuzzed program's behaviour, before
    or after register allocation."""
    from repro.opt import optimize
    from repro.workloads.minilang_fuzz import random_minilang_workload

    w = random_minilang_workload(seed)
    optimized = optimize(w.fn)
    a = simulate(w.fn, args=w.args, arrays=w.arrays)
    b = simulate(optimized, args=dict(w.args), arrays=w.arrays)
    assert a.returned == b.returned
