"""Unit tests for the instruction layer."""

import pytest

from repro.ir.instructions import (
    BINARY_OPS,
    Instr,
    Opcode,
    UNARY_OPS,
    eval_binary,
    eval_unary,
    is_phys,
    make_binary,
    make_unary,
    opcode_from_mnemonic,
    phys_index,
    phys_reg,
)


class TestPhysRegNames:
    def test_round_trip(self):
        for i in (0, 1, 7, 31, 128):
            assert phys_index(phys_reg(i)) == i

    def test_is_phys(self):
        assert is_phys("R0")
        assert is_phys("R17")
        assert not is_phys("r0")
        assert not is_phys("R")
        assert not is_phys("Rx")
        assert not is_phys("g1")
        assert not is_phys("R1x")

    def test_phys_index_rejects_non_phys(self):
        with pytest.raises(ValueError):
            phys_index("g1")


class TestInstrBasics:
    def test_defs_uses_are_tuples(self):
        instr = Instr(Opcode.ADD, defs=["d"], uses=["a", "b"])
        assert instr.defs == ("d",)
        assert instr.uses == ("a", "b")

    def test_uids_unique(self):
        a = Instr(Opcode.NOP)
        b = Instr(Opcode.NOP)
        assert a.uid != b.uid

    def test_clone_preserves_uid(self):
        a = Instr(Opcode.ADD, defs=("d",), uses=("a", "b"))
        assert a.clone().uid == a.uid

    def test_fresh_clone_changes_uid(self):
        a = Instr(Opcode.ADD, defs=("d",), uses=("a", "b"))
        assert a.fresh_clone().uid != a.uid

    def test_rewrite_maps_defs_and_uses(self):
        a = Instr(Opcode.ADD, defs=("d",), uses=("a", "b"))
        out = a.rewrite(lambda v: v.upper())
        assert out.defs == ("D",)
        assert out.uses == ("A", "B")
        assert out.uid == a.uid

    def test_variables(self):
        a = Instr(Opcode.STORE, uses=("i", "v"), imm="A")
        assert a.variables() == ("i", "v")

    def test_terminator_flags(self):
        assert Instr(Opcode.BR).is_terminator
        assert Instr(Opcode.CBR, uses=("c",)).is_terminator
        assert Instr(Opcode.RET).is_terminator
        assert not Instr(Opcode.ADD, defs=("d",), uses=("a", "b")).is_terminator

    def test_memory_flags(self):
        assert Instr(Opcode.LOAD, defs=("d",), uses=("i",), imm="A").is_memory
        assert Instr(Opcode.SPILL_LD, defs=("d",), imm="s").is_memory
        assert Instr(Opcode.SPILL_ST, uses=("d",), imm="s").is_spill
        assert not Instr(Opcode.ADD, defs=("d",), uses=("a", "b")).is_memory

    def test_copy_like(self):
        assert Instr(Opcode.COPY, defs=("d",), uses=("s",)).is_copy_like
        assert Instr(Opcode.MOVE, defs=("d",), uses=("s",)).is_copy_like
        assert not Instr(Opcode.ADD, defs=("d",), uses=("a", "b")).is_copy_like


class TestConstructors:
    def test_make_binary_validates(self):
        with pytest.raises(ValueError):
            make_binary(Opcode.NEG, "d", "a", "b")

    def test_make_unary_validates(self):
        with pytest.raises(ValueError):
            make_unary(Opcode.ADD, "d", "a")

    def test_make_binary_shape(self):
        instr = make_binary(Opcode.MUL, "d", "a", "b")
        assert instr.op is Opcode.MUL
        assert instr.defs == ("d",)
        assert instr.uses == ("a", "b")


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.ADD, 2, 3, 5),
            (Opcode.SUB, 2, 3, -1),
            (Opcode.MUL, 4, 3, 12),
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),  # truncating division
            (Opcode.DIV, 7, 0, 0),    # defined behaviour on zero
            (Opcode.MOD, 7, 3, 1),
            (Opcode.MOD, 7, 0, 0),
            (Opcode.MIN, 3, -1, -1),
            (Opcode.MAX, 3, -1, 3),
            (Opcode.AND, 1, 0, 0),
            (Opcode.OR, 1, 0, 1),
            (Opcode.CMP_LT, 1, 2, 1),
            (Opcode.CMP_LE, 2, 2, 1),
            (Opcode.CMP_EQ, 2, 2, 1),
            (Opcode.CMP_NE, 2, 2, 0),
            (Opcode.CMP_GT, 3, 2, 1),
            (Opcode.CMP_GE, 1, 2, 0),
        ],
    )
    def test_binary(self, op, a, b, expected):
        assert eval_binary(op, a, b) == expected

    def test_unary(self):
        assert eval_unary(Opcode.NEG, 5) == -5
        assert eval_unary(Opcode.NOT, 0) == 1
        assert eval_unary(Opcode.NOT, 3) == 0

    def test_every_binary_op_evaluable(self):
        for op in BINARY_OPS:
            eval_binary(op, 6, 3)

    def test_every_unary_op_evaluable(self):
        for op in UNARY_OPS:
            eval_unary(op, 6)


class TestMnemonics:
    def test_lookup(self):
        assert opcode_from_mnemonic("add") is Opcode.ADD
        assert opcode_from_mnemonic("cmplt") is Opcode.CMP_LT
        assert opcode_from_mnemonic("spillld") is Opcode.SPILL_LD

    def test_unknown(self):
        with pytest.raises(ValueError):
            opcode_from_mnemonic("frobnicate")
