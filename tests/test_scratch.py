"""Tests for the memory-hierarchy (scratch) extension."""

import pytest

from repro.core import HierarchicalAllocator
from repro.core.scratch import (
    hierarchy_cost,
    promote_to_scratch,
    spill_slot_references,
    weighted_slot_traffic,
)
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import dot


@pytest.fixture
def allocated_dot():
    workload = Workload(
        dot(), {"n": 6}, {"A": [1] * 6, "B": [2] * 6}, name="dot"
    )
    result = compile_function(workload, HierarchicalAllocator(), Machine.simple(3))
    return workload, result


class TestPromotion:
    def test_zero_cells_is_identity(self, allocated_dot):
        _, result = allocated_dot
        promoted, chosen = promote_to_scratch(result.fn, 0)
        assert chosen == []
        assert promoted.instr_count() == result.fn.instr_count()

    def test_semantics_preserved(self, allocated_dot):
        workload, result = allocated_dot
        promoted, chosen = promote_to_scratch(result.fn, 2)
        assert chosen
        args = {promoted.params[0]: 6}
        run = simulate(promoted, args=args, arrays=workload.arrays)
        assert run.returned == result.allocated_run.returned

    def test_scratch_refs_counted(self, allocated_dot):
        workload, result = allocated_dot
        promoted, chosen = promote_to_scratch(result.fn, 2)
        run = simulate(
            promoted, args={promoted.params[0]: 6}, arrays=workload.arrays
        )
        assert run.scratch_refs > 0
        assert run.scratch_refs <= run.spill_memory_refs

    def test_cost_improves(self, allocated_dot):
        workload, result = allocated_dot
        base = hierarchy_cost(result.allocated_run)
        promoted, _ = promote_to_scratch(result.fn, 3)
        run = simulate(
            promoted, args={promoted.params[0]: 6}, arrays=workload.arrays
        )
        assert hierarchy_cost(run) < base

    def test_param_slots_not_promoted(self, allocated_dot):
        _, result = allocated_dot
        _, chosen = promote_to_scratch(result.fn, 99)
        assert "slot:n" not in chosen

    def test_traffic_accounts_static_refs(self, allocated_dot):
        _, result = allocated_dot
        static = spill_slot_references(result.fn)
        weighted = weighted_slot_traffic(result.fn)
        assert set(static) == set(weighted)
        for key in static:
            assert weighted[key] > 0
