"""Resource governance: budgets, admission estimates, engine ladder.

The load-bearing properties, each pinned here:

* budget limits only *abort* -- a budgeted allocation that completes is
  bit-identical to the unbudgeted one, and the fuel spend itself is a
  pure function of the input (two runs, same snapshot);
* fuel exhaustion is deterministic and classified PERMANENT, deadline
  misses TRANSIENT (``repro.errors`` taxonomy);
* :func:`~repro.core.budget.estimate_cost` is deterministic and
  monotone in program size (hypothesis over the structured generator);
* the batch engine degrades budget-starved functions down the ladder
  (``degraded_by_budget`` counted) and refuses over-limit functions at
  admission *before* consulting the cache (``rejected`` counted,
  ``attempts == 0``).
"""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import BatchConfig, BatchEngine
from repro.core import HierarchicalAllocator
from repro.core.budget import (
    AllocationBudget,
    BudgetExceededError,
    BudgetLimits,
    estimate_cost,
)
from repro.errors import PERMANENT, TRANSIENT, classify_exception
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.pipeline import Workload
from repro.workloads.generators import random_program

MACHINE = Machine.simple(8)
SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _program(seed: int):
    return random_program(seed, max_blocks=30, max_vars=12, max_depth=3)


class TestBudgetLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetLimits(max_fuel=0)
        with pytest.raises(ValueError):
            BudgetLimits(deadline_s=0.0)
        with pytest.raises(ValueError):
            BudgetLimits(deadline_s=-1.0)

    def test_unlimited_spec_starts_no_budget(self):
        assert BudgetLimits().unlimited
        assert BudgetLimits().start() is None

    def test_limited_spec_mints_fresh_budgets(self):
        limits = BudgetLimits(max_fuel=100)
        first, second = limits.start(), limits.start()
        assert isinstance(first, AllocationBudget)
        assert first is not second  # no fuel leaks between allocations
        first.charge(99, "tiles")
        assert second.spent == 0


class TestAllocationBudget:
    def test_charge_accumulates_and_raises_at_exhaustion(self):
        budget = AllocationBudget(max_fuel=10)
        budget.charge(4, "tiles")
        budget.charge(6, "graph")
        assert budget.spent == 10
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.charge(1, "graph")
        exc = exc_info.value
        assert exc.resource == "fuel"
        assert exc.spent == 11 and exc.limit == 10
        assert exc.counters == {"tiles": 4, "graph": 7}

    def test_snapshot_is_json_ready_and_sorted(self):
        budget = AllocationBudget(max_fuel=100)
        budget.charge(3, "simplify")
        budget.charge(2, "edges")
        snap = budget.snapshot()
        assert snap["spent"] == 5
        assert snap["max_fuel"] == 100
        assert list(snap["counters"]) == ["edges", "simplify"]

    def test_deadline_probe_raises_transient_resource(self):
        budget = AllocationBudget(deadline_s=0.001)
        time.sleep(0.01)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.check_deadline()
        assert exc_info.value.resource == "deadline"

    def test_classification_fuel_permanent_deadline_transient(self):
        fuel = BudgetExceededError("fuel", 11, 10)
        deadline = BudgetExceededError("deadline", 0.2, 0.1)
        assert classify_exception(fuel) == ("budget", PERMANENT)
        assert classify_exception(deadline) == ("deadline", TRANSIENT)


class TestEstimateCost:
    @COMMON
    @given(seed=SEEDS)
    def test_deterministic_over_same_text(self, seed):
        first = estimate_cost(_program(seed))
        second = estimate_cost(_program(seed))
        assert first == second

    @COMMON
    @given(seed=SEEDS)
    def test_monotone_in_program_growth(self, seed):
        """Adding blocks/instructions never lowers the estimate."""
        from repro.workloads.adversarial import (
            deep_loop_nest,
            high_degree_clique,
        )

        assert estimate_cost(deep_loop_nest(seed, depth=6)) < estimate_cost(
            deep_loop_nest(seed, depth=7)
        )
        assert estimate_cost(
            high_degree_clique(seed, width=12)
        ) < estimate_cost(high_degree_clique(seed, width=13))

    def test_positive_and_cheap_shape(self):
        fn = _program(3)
        cost = estimate_cost(fn)
        assert cost > len(fn.blocks)  # instructions weigh in


class TestBudgetedAllocationIdentity:
    @COMMON
    @given(seed=SEEDS)
    def test_generous_budget_is_bit_identical_to_unbudgeted(self, seed):
        fn = _program(seed)
        plain = HierarchicalAllocator().allocate(fn, MACHINE)
        budgeted_alloc = HierarchicalAllocator(
            budget_limits=BudgetLimits(max_fuel=10**9)
        )
        budgeted = budgeted_alloc.allocate(fn, MACHINE)
        assert format_function(budgeted.fn) == format_function(plain.fn)
        assert budgeted_alloc.last_budget is not None
        assert budgeted_alloc.last_budget["spent"] > 0

    @COMMON
    @given(seed=SEEDS)
    def test_fuel_spend_is_a_pure_function_of_the_input(self, seed):
        snaps = []
        for _ in range(2):
            allocator = HierarchicalAllocator(
                budget_limits=BudgetLimits(max_fuel=10**9)
            )
            allocator.allocate(_program(seed), MACHINE)
            snaps.append(allocator.last_budget)
        assert snaps[0] == snaps[1]

    def test_tiny_fuel_raises_classified_exhaustion(self):
        allocator = HierarchicalAllocator(
            budget_limits=BudgetLimits(max_fuel=25)
        )
        with pytest.raises(BudgetExceededError) as exc_info:
            allocator.allocate(_program(1), MACHINE)
        assert exc_info.value.resource == "fuel"
        assert exc_info.value.counters  # at least one category charged

    def test_unbudgeted_allocator_records_no_snapshot(self):
        allocator = HierarchicalAllocator()
        allocator.allocate(_program(2), MACHINE)
        assert allocator.last_budget is None


def _module(count=3, seed=0):
    return [
        Workload(_program(seed + i), {"n": 4}, {}, name=f"fn{i}")
        for i in range(count)
    ]


class TestEngineGovernance:
    def test_tiny_fuel_degrades_down_the_ladder(self):
        config = BatchConfig(
            batch_workers=0, on_error="degrade", max_fuel=20
        )
        with BatchEngine(batch=config) as engine:
            module = engine.allocate_module(_module())
            stats = engine.stats
        assert all(r.ok and r.degraded for r in module.results)
        assert all(
            r.error is not None and r.error.error_class == "budget"
            for r in module.results
        )
        assert stats.degraded_by_budget == len(module.results)

    def test_admission_rejects_before_any_attempt(self):
        config = BatchConfig(
            batch_workers=0, on_error="degrade", admission_limit=10
        )
        with BatchEngine(batch=config) as engine:
            module = engine.allocate_module(_module())
            stats = engine.stats
        assert stats.rejected == len(module.results)
        for result in module.results:
            assert result.error.error_class == "admission"
            assert result.attempts == 0  # never reached the allocator
            assert result.ok and result.degraded  # ladder still produced

    def test_admission_is_independent_of_cache_state(self):
        """Rejection is a pure function of the input: a second submission
        of the same module rejects again instead of hitting a cache."""
        config = BatchConfig(
            batch_workers=0, on_error="degrade", admission_limit=10
        )
        with BatchEngine(batch=config) as engine:
            engine.allocate_module(_module())
            engine.allocate_module(_module())
            assert engine.stats.rejected == 2 * len(_module())

    def test_admitted_functions_complete_normally(self):
        config = BatchConfig(
            batch_workers=0, on_error="degrade", admission_limit=10**9,
            max_fuel=10**9,
        )
        with BatchEngine(batch=config) as engine:
            module = engine.allocate_module(_module())
            stats = engine.stats
        assert stats.rejected == 0 and stats.degraded_by_budget == 0
        assert all(r.ok and not r.degraded for r in module.results)

    def test_budget_config_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(max_fuel=0)
        with pytest.raises(ValueError):
            BatchConfig(deadline_s=0.0)
        with pytest.raises(ValueError):
            BatchConfig(admission_limit=0)
