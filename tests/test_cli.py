"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.cli import main
from repro.ir import format_function
from repro.workloads.kernels import dot


@pytest.fixture
def dot_file(tmp_path):
    path = tmp_path / "dot.ir"
    path.write_text(format_function(dot()))
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_executes(self, dot_file):
        code, text = run_cli([
            "run", dot_file, "--arg", "n=4",
            "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "returned: (70,)" in text

    def test_profile_flag(self, dot_file):
        code, text = run_cli([
            "run", dot_file, "--arg", "n=2",
            "--array", "A=1,1", "--array", "B=1,1", "--profile",
        ])
        assert code == 0
        assert "block counts:" in text
        assert "body: 2" in text

    def test_bad_arg_format(self, dot_file):
        with pytest.raises(SystemExit):
            run_cli(["run", dot_file, "--arg", "nonsense"])


class TestTiles:
    def test_prints_tree(self, dot_file):
        code, text = run_cli(["tiles", dot_file])
        assert code == 0
        assert "root" in text and "loop" in text
        assert "tiles:" in text


class TestAllocate:
    @pytest.mark.parametrize(
        "allocator", ["hierarchical", "chaitin", "briggs", "local", "naive"]
    )
    def test_all_allocators(self, dot_file, allocator):
        code, text = run_cli([
            "allocate", dot_file, "--allocator", allocator,
            "--registers", "4", "--arg", "n=4",
            "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "# returned: (70,)" in text
        assert "verification: PASSED" in text

    def test_profile_guided(self, dot_file):
        code, text = run_cli([
            "allocate", dot_file, "--allocator", "hierarchical",
            "--registers", "3", "--profile-guided",
            "--arg", "n=4", "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "# returned: (70,)" in text

    def test_no_verify(self, dot_file):
        code, text = run_cli([
            "allocate", dot_file, "--registers", "4",
            "--arg", "n=1", "--array", "A=3", "--array", "B=3",
            "--no-verify",
        ])
        assert code == 0
        assert "verification" not in text

    def test_output_parses_back(self, dot_file, tmp_path):
        """The allocated program printed by the CLI is valid IR text."""
        from repro.ir import parse_function
        from repro.machine.simulator import simulate

        code, text = run_cli([
            "allocate", dot_file, "--registers", "4",
            "--arg", "n=3", "--array", "A=2,2,2", "--array", "B=3,3,3",
        ])
        ir_text = text.split("# allocator:")[0]
        fn = parse_function(ir_text)
        result = simulate(
            fn,
            args={p: 3 for p in fn.params},
            arrays={"A": [2, 2, 2], "B": [3, 3, 3]},
        )
        assert result.returned == (18,)


class TestMiniLangInput:
    ML = (
        "func f(n) {\n"
        "    var s = 0;\n"
        "    var i = 0;\n"
        "    while (i < n) { s = s + A[i]; i = i + 1; }\n"
        "    return s;\n"
        "}\n"
    )

    def test_auto_detected(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli([
            "run", str(path), "--arg", "n=3", "--array", "A=4,5,6",
        ])
        assert code == 0
        assert "returned: (15,)" in text

    def test_explicit_lang(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli([
            "allocate", str(path), "--lang", "minilang",
            "--registers", "3", "--arg", "n=3", "--array", "A=4,5,6",
        ])
        assert code == 0
        assert "# returned: (15,)" in text

    def test_tiles_on_minilang(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli(["tiles", str(path)])
        assert code == 0
        assert "loop" in text
