"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.cli import main
from repro.ir import format_function
from repro.workloads.kernels import dot


@pytest.fixture
def dot_file(tmp_path):
    path = tmp_path / "dot.ir"
    path.write_text(format_function(dot()))
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_executes(self, dot_file):
        code, text = run_cli([
            "run", dot_file, "--arg", "n=4",
            "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "returned: (70,)" in text

    def test_profile_flag(self, dot_file):
        code, text = run_cli([
            "run", dot_file, "--arg", "n=2",
            "--array", "A=1,1", "--array", "B=1,1", "--profile",
        ])
        assert code == 0
        assert "block counts:" in text
        assert "body: 2" in text

    def test_bad_arg_format(self, dot_file):
        with pytest.raises(SystemExit):
            run_cli(["run", dot_file, "--arg", "nonsense"])


class TestTiles:
    def test_prints_tree(self, dot_file):
        code, text = run_cli(["tiles", dot_file])
        assert code == 0
        assert "root" in text and "loop" in text
        assert "tiles:" in text


class TestAllocate:
    @pytest.mark.parametrize(
        "allocator", ["hierarchical", "chaitin", "briggs", "local", "naive"]
    )
    def test_all_allocators(self, dot_file, allocator):
        code, text = run_cli([
            "allocate", dot_file, "--allocator", allocator,
            "--registers", "4", "--arg", "n=4",
            "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "# returned: (70,)" in text
        assert "verification: PASSED" in text

    def test_profile_guided(self, dot_file):
        code, text = run_cli([
            "allocate", dot_file, "--allocator", "hierarchical",
            "--registers", "3", "--profile-guided",
            "--arg", "n=4", "--array", "A=1,2,3,4", "--array", "B=5,6,7,8",
        ])
        assert code == 0
        assert "# returned: (70,)" in text

    def test_no_verify(self, dot_file):
        code, text = run_cli([
            "allocate", dot_file, "--registers", "4",
            "--arg", "n=1", "--array", "A=3", "--array", "B=3",
            "--no-verify",
        ])
        assert code == 0
        assert "verification" not in text

    def test_output_parses_back(self, dot_file, tmp_path):
        """The allocated program printed by the CLI is valid IR text."""
        from repro.ir import parse_function
        from repro.machine.simulator import simulate

        code, text = run_cli([
            "allocate", dot_file, "--registers", "4",
            "--arg", "n=3", "--array", "A=2,2,2", "--array", "B=3,3,3",
        ])
        ir_text = text.split("# allocator:")[0]
        fn = parse_function(ir_text)
        result = simulate(
            fn,
            args={p: 3 for p in fn.params},
            arrays={"A": [2, 2, 2], "B": [3, 3, 3]},
        )
        assert result.returned == (18,)


class TestMiniLangInput:
    ML = (
        "func f(n) {\n"
        "    var s = 0;\n"
        "    var i = 0;\n"
        "    while (i < n) { s = s + A[i]; i = i + 1; }\n"
        "    return s;\n"
        "}\n"
    )

    def test_auto_detected(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli([
            "run", str(path), "--arg", "n=3", "--array", "A=4,5,6",
        ])
        assert code == 0
        assert "returned: (15,)" in text

    def test_explicit_lang(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli([
            "allocate", str(path), "--lang", "minilang",
            "--registers", "3", "--arg", "n=3", "--array", "A=4,5,6",
        ])
        assert code == 0
        assert "# returned: (15,)" in text

    def test_tiles_on_minilang(self, tmp_path):
        path = tmp_path / "sum.ml"
        path.write_text(self.ML)
        code, text = run_cli(["tiles", str(path)])
        assert code == 0
        assert "loop" in text


class TestTrace:
    @pytest.fixture
    def figure1_file(self, tmp_path):
        from repro.workloads.figure1 import figure1

        path = tmp_path / "figure1.ir"
        path.write_text(format_function(figure1()))
        return str(path)

    def test_report_shows_metrics_and_cases(self, figure1_file):
        code, text = run_cli(["trace", figure1_file, "--registers", "4"])
        assert code == 0
        assert "## Tile tree" in text
        for column in ("Local_weight", "Transfer", "Weight", "Reg", "Mem"):
            assert column in text
        # All four section-5 cases are named in the case totals line.
        for case in ("spill", "transfer", "reload", "no_change"):
            assert case in text
        assert "Case totals:" in text
        assert "## Counters" in text

    def test_jsonl_output(self, figure1_file, tmp_path):
        import json

        jsonl = tmp_path / "events.jsonl"
        code, text = run_cli([
            "trace", figure1_file, "--registers", "4",
            "--jsonl", str(jsonl),
        ])
        assert code == 0
        lines = jsonl.read_text().strip().splitlines()
        assert lines
        types = {json.loads(line)["type"] for line in lines}
        assert "TileColored" in types and "BoundaryAction" in types

    def test_parallel_with_chrome_and_timings(self, figure1_file, tmp_path):
        import json

        chrome = tmp_path / "sched.json"
        code, text = run_cli([
            "trace", figure1_file, "--registers", "4",
            "--workers", "2", "--chrome", str(chrome), "--timings",
        ])
        assert code == 0
        assert "## Stage timings" in text
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_does_not_require_inputs(self, figure1_file):
        # Unlike run/allocate, trace only allocates -- no simulation, so
        # no --arg is needed.
        code, text = run_cli(["trace", figure1_file])
        assert code == 0
