"""Tests for execution-frequency estimation (Prob(b), Prob(e))."""

import pytest

from repro.analysis.frequency import (
    LOOP_BACK_PROB,
    estimate_frequencies,
    frequencies_from_profile,
    loop_depth_weights,
)
from repro.machine.simulator import simulate
from repro.workloads.kernels import matmul
from repro.workloads.figure1 import figure1


class TestStaticEstimates:
    def test_loop_trip_count(self, loop_fn):
        freq = estimate_frequencies(loop_fn)
        expected = 1.0 / (1.0 - LOOP_BACK_PROB)  # 10
        assert freq.block_freq["head"] == pytest.approx(expected)
        assert freq.block_freq["body"] == pytest.approx(expected - 1)
        assert freq.block_freq["entry"] == pytest.approx(1.0)
        assert freq.block_freq[loop_fn.stop_label] == pytest.approx(1.0)

    def test_branch_split(self, diamond_fn):
        freq = estimate_frequencies(diamond_fn)
        assert freq.block_freq["then"] == pytest.approx(0.5)
        assert freq.block_freq["els"] == pytest.approx(0.5)
        assert freq.block_freq["join"] == pytest.approx(1.0)

    def test_edge_freq_consistency(self, loop_fn):
        """Flow conservation: block frequency equals incoming edge flow."""
        freq = estimate_frequencies(loop_fn)
        for label in loop_fn.blocks:
            if label == loop_fn.start_label:
                continue
            inflow = sum(
                f for (u, v), f in freq.edge_freq.items() if v == label
            )
            assert inflow == pytest.approx(freq.block_freq[label], rel=1e-6)

    def test_nested_loops_multiply(self):
        freq = estimate_frequencies(matmul())
        assert freq.block_freq["kbody"] > 100  # three nested trip-10 loops
        assert freq.block_freq["kbody"] > freq.block_freq["jh"]
        assert freq.block_freq["jh"] > freq.block_freq["ih"]

    def test_two_sequential_loops(self):
        freq = estimate_frequencies(figure1())
        assert freq.block_freq["B2"] == pytest.approx(freq.block_freq["B3"])
        assert freq.block_freq["B4"] == pytest.approx(1.0)


class TestProfileFrequencies:
    def test_profile_matches_run(self, loop_fn):
        result = simulate(loop_fn, args={"n": 7})
        freq = frequencies_from_profile(loop_fn, result.profile)
        assert freq.block_freq["body"] == pytest.approx(7.0)
        assert freq.block_freq["head"] == pytest.approx(8.0)
        assert freq.source == "profile"

    def test_untaken_edges_present_as_zero(self, diamond_fn):
        result = simulate(diamond_fn, args={"x": 1})  # takes 'then'
        freq = frequencies_from_profile(diamond_fn, result.profile)
        assert freq.edge_freq[("entry", "els")] == 0.0
        assert freq.edge_freq[("entry", "then")] == pytest.approx(1.0)

    def test_normalized_by_entries(self, loop_fn):
        result = simulate(loop_fn, args={"n": 3})
        merged = result.profile.merge(result.profile)
        freq = frequencies_from_profile(loop_fn, merged)
        # Two identical runs: per-entry frequencies unchanged.
        assert freq.block_freq["body"] == pytest.approx(3.0)


class TestLoopDepthWeights:
    def test_powers_of_base(self):
        weights = loop_depth_weights(matmul(), base=10.0)
        assert weights["kbody"] == pytest.approx(1000.0)
        assert weights["jh"] == pytest.approx(100.0)
        assert weights["ih"] == pytest.approx(10.0)
        assert weights["entry"] == pytest.approx(1.0)
