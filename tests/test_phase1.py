"""Tests for the bottom-up allocation phase."""

import pytest

from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.core.phase1 import run_phase1
from repro.core.summary import is_summary_var, is_temp_node
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1
from repro.workloads.kernels import cond_sum, dot, matmul


def phase1_for(fn, registers=4, config=None):
    build = build_tile_tree_detailed(fn.clone())
    ctx = build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )
    config = config or HierarchicalConfig()
    return ctx, run_phase1(ctx, config)


class TestClassification:
    def test_loop_locals_and_globals(self):
        ctx, allocations = phase1_for(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        alloc = allocations[loop1.tid]
        assert "t1" in alloc.locals_          # only referenced inside
        assert "g1" in alloc.globals_         # live across the boundary
        assert "i1" in alloc.globals_
        assert "g2" not in alloc.graph.nodes() or "g2" in alloc.globals_

    def test_unreferenced_live_through_omitted(self):
        """Paper: 'tile T2 does not need to represent g2 in its
        interference graph' -- unreferenced live-through vars are not
        nodes in the loop tile."""
        ctx, allocations = phase1_for(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        alloc = allocations[loop1.tid]
        assert "g2" not in alloc.graph  # unreferenced in loop 1

    def test_root_has_no_globals(self):
        ctx, allocations = phase1_for(dot())
        root_alloc = allocations[ctx.tree.root.tid]
        assert not root_alloc.globals_


class TestSummaries:
    def test_summary_vars_bounded_by_registers(self):
        for fn in (figure1(), matmul(), cond_sum()):
            ctx, allocations = phase1_for(fn, registers=4)
            for alloc in allocations.values():
                assert len(alloc.summary_vars) <= 4

    def test_ts_map_targets_summary_vars(self):
        ctx, allocations = phase1_for(figure1())
        for alloc in allocations.values():
            for var, summary in alloc.ts_map.items():
                assert is_summary_var(summary)
                assert summary in alloc.summary_vars.values()

    def test_global_regs_not_spilled(self):
        ctx, allocations = phase1_for(figure1())
        for alloc in allocations.values():
            for var in alloc.global_regs:
                assert var not in alloc.spilled

    def test_conflict_summary_refers_to_known_names(self):
        ctx, allocations = phase1_for(matmul())
        for alloc in allocations.values():
            summaries = set(alloc.summary_vars.values())
            for g, s in alloc.conflict_global_summary:
                assert g in alloc.global_regs
                assert s in summaries
            for s1, s2 in alloc.conflict_summary_summary:
                assert s1 in summaries and s2 in summaries


class TestColoringInvariants:
    @pytest.mark.parametrize("registers", [2, 3, 4, 8])
    def test_no_conflicting_nodes_share_colors(self, registers):
        ctx, allocations = phase1_for(figure1(), registers=registers)
        for alloc in allocations.values():
            for a, b in alloc.graph.edges():
                ca = alloc.assignment.get(a)
                cb = alloc.assignment.get(b)
                if ca is not None and cb is not None:
                    assert ca != cb, (a, b, alloc.tile_id)

    @pytest.mark.parametrize("registers", [2, 4])
    def test_color_budget_respected(self, registers):
        ctx, allocations = phase1_for(matmul(), registers=registers)
        for alloc in allocations.values():
            assert len(set(alloc.assignment.values())) <= registers

    def test_spilled_references_have_temps(self):
        ctx, allocations = phase1_for(figure1(), registers=2)
        for tile in ctx.tree.preorder():
            alloc = allocations[tile.tid]
            own = tile.own_blocks()
            for var in alloc.spilled:
                if is_summary_var(var) or is_temp_node(var):
                    continue
                for label in own:
                    for instr in ctx.fn.blocks[label].instrs:
                        if var in instr.uses:
                            temp = f"tmp:{instr.uid}:{var}:u"
                            assert temp in alloc.assignment

    def test_temps_always_colored(self):
        ctx, allocations = phase1_for(figure1(), registers=2)
        for alloc in allocations.values():
            for temp in alloc.temp_nodes:
                assert temp in alloc.assignment


class TestFigure1Expectations:
    def test_loop_tiles_spill_nothing_at_four_registers(self):
        """Each Figure 1 loop body references exactly four variables: the
        loop tile itself needs no spills at R=4."""
        ctx, allocations = phase1_for(figure1(), registers=4)
        for tile in ctx.tree.preorder():
            if tile.kind == "loop":
                alloc = allocations[tile.tid]
                real_spills = {
                    v for v in alloc.spilled
                    if not is_summary_var(v) and not is_temp_node(v)
                }
                assert not real_spills, (tile.header, real_spills)

    def test_graphs_stay_small(self):
        """E6 claim: no single tile graph represents all of the program's
        variables at once (summary/temp nodes excluded from the count)."""
        ctx, allocations = phase1_for(matmul(), registers=4)
        total_vars = len(ctx.fn.variables())
        for alloc in allocations.values():
            real_nodes = [
                n for n in alloc.graph.nodes()
                if not is_summary_var(n) and not is_temp_node(n)
            ]
            assert len(real_nodes) < total_vars
