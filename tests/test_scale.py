"""Scale stress tests: large programs through the whole pipeline."""

import pytest

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.tiles.construction import build_tile_tree_detailed
from repro.tiles.validate import validate_tile_tree
from repro.workloads.generators import random_program, random_workload
from repro.workloads.kernels import sequential_loops


class TestLargePrograms:
    def test_deep_random_program(self):
        """A deep, break-ful random program end to end at low pressure."""
        w = random_workload(
            777, max_blocks=120, max_vars=30, max_depth=5, break_prob=0.25
        )
        assert len(w.fn.blocks) > 50
        result = compile_function(w, HierarchicalAllocator(), Machine.simple(3))
        assert result.allocated_run.returned == result.reference_run.returned

    def test_wide_program_with_chunking(self):
        fn = sequential_loops(48)
        w = Workload(fn, {"n": 2}, {"A": [5, 6, 7]}, name="seq48")
        result = compile_function(
            w,
            HierarchicalAllocator(HierarchicalConfig(max_tile_width=4)),
            Machine.simple(4),
        )
        assert result.allocated_run.returned == result.reference_run.returned
        # The chunking hierarchy keeps every graph small even at 48 loops.
        assert result.stats.max_graph_nodes < 40

    def test_tile_trees_legal_at_scale(self):
        for seed in (11, 12, 13):
            fn = random_program(
                seed, max_blocks=150, max_vars=40, max_depth=5, break_prob=0.3
            )
            build = build_tile_tree_detailed(fn)
            validate_tile_tree(build.tree)

    def test_both_allocators_agree_at_scale(self):
        w = random_workload(402, max_blocks=100, max_vars=24, max_depth=4)
        hier = compile_function(w, HierarchicalAllocator(), Machine.simple(4))
        flat = compile_function(w, ChaitinAllocator(), Machine.simple(4))
        assert (
            hier.allocated_run.returned
            == flat.allocated_run.returned
            == hier.reference_run.returned
        )
