"""The allocation service: HTTP protocol, coalescing, backpressure,
error classification, health, and graceful shutdown.

The load-bearing properties, each pinned by a test here:

* served results are byte-identical to direct ``allocate_module`` output
  (the service adds routing, never allocation semantics);
* concurrent identical submissions produce exactly one engine miss
  (cross-request coalescing keyed by the engine's own cache key);
* a full queue answers a deterministic ``429`` and enqueues *nothing*
  (all-or-nothing admission);
* malformed bodies answer classified ``400``s, never ``500``s, and never
  reach the engine;
* ``/healthz`` observes pool death and recovery (driven by the PR-5
  fault-injection plan and by killing a worker directly);
* graceful shutdown drains every accepted request to a real response.

Tests run the real server on a loopback ephemeral port through the real
client -- no in-process shortcuts -- inside ``asyncio.run`` (the suite
does not assume pytest-asyncio).  ``pause_dispatch``/``resume_dispatch``
freeze the dispatcher so admission states (queue depth, coalescing
windows, 429s) are deterministic to observe.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.batch import BatchConfig, synthetic_module
from repro.batch.faultinject import ENV_VAR
from repro.ir import format_function
from repro.pipeline import allocate_module
from repro.service import (
    SERVICE_ERROR_CLASSES,
    AllocationService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.http import (
    ProtocolError,
    read_request,
    read_response,
    request_bytes,
    response_bytes,
)
from repro.service.server import LatencyHistogram


def service_config(**kwargs) -> ServiceConfig:
    batch_kwargs = kwargs.pop("batch_kwargs", {})
    batch_kwargs.setdefault("batch_workers", 0)
    batch_kwargs.setdefault("simulate", True)
    return ServiceConfig(batch=BatchConfig(**batch_kwargs), **kwargs)


def run(coro):
    return asyncio.run(coro)


async def wait_until(predicate, timeout=10.0, interval=0.002):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError(f"condition not met within {timeout}s")


async def raw_roundtrip(port: int, data: bytes):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(data)
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


ML_ADD = "func f(n) { return n + 2; }"


def ml_source(i: int) -> str:
    """Distinct small MiniLang functions, one per *i*."""
    return (
        f"func k{i}(n) {{ var s = {i}; var j = 0; "
        f"while (j < n) {{ s = s + j * {i + 1}; j = j + 1; }} "
        f"return s; }}"
    )


# ----------------------------------------------------------------------
# protocol layer
# ----------------------------------------------------------------------
class TestHttpProtocol:
    def test_request_roundtrip_and_keepalive_eof(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(request_bytes(
                "POST", "/allocate?stream=1&text=1", "h", b'{"x": 1}'
            ))
            reader.feed_eof()
            req = await read_request(reader, 1024)
            assert req.method == "POST"
            assert req.path == "/allocate"
            assert req.query == {"stream": "1", "text": "1"}
            assert req.body == b'{"x": 1}'
            assert req.keep_alive
            # clean EOF between keep-alive requests parses as None
            assert await read_request(reader, 1024) is None

        run(main())

    def test_connection_close_and_http10_semantics(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
                b"GET / HTTP/1.0\r\n\r\n"
                b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
            )
            reader.feed_eof()
            assert (await read_request(reader, 0)).keep_alive is False
            assert (await read_request(reader, 0)).keep_alive is False
            assert (await read_request(reader, 0)).keep_alive is True

        run(main())

    def test_protocol_errors_carry_http_status(self):
        async def parse(raw: bytes, max_body: int = 64):
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader, max_body)

        async def main():
            with pytest.raises(ProtocolError) as exc:
                await parse(b"NONSENSE\r\n\r\n")
            assert exc.value.status == 400
            with pytest.raises(ProtocolError) as exc:
                await parse(b"GET / HTTP/2\r\n\r\n")
            assert exc.value.status == 505
            with pytest.raises(ProtocolError) as exc:
                await parse(
                    b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
                )
            assert exc.value.status == 413
            assert exc.value.discard == 100
            with pytest.raises(ProtocolError) as exc:
                await parse(
                    b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
                )
            assert exc.value.status == 400

        run(main())

    def test_response_roundtrip_fixed_and_chunked(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(response_bytes(429, b'{"a": 1}'))
            # hand-built chunked response: two chunks then terminator
            reader.feed_data(
                b"HTTP/1.1 200 OK\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
            )
            reader.feed_eof()
            fixed = await read_response(reader)
            assert fixed.status == 429
            assert json.loads(fixed.body) == {"a": 1}
            chunked = await read_response(reader)
            assert chunked.status == 200
            assert chunked.chunks == (b"hello", b" world")
            assert chunked.body == b"hello world"

        run(main())


class TestLatencyHistogram:
    def test_quantiles_and_snapshot(self):
        hist = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 200):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 10
        assert snap["p50_ms"] <= snap["p99_ms"] <= snap["max_ms"]
        assert snap["p50_ms"] <= 2.0   # nine 1ms observations
        assert snap["p99_ms"] >= 100.0  # the 200ms outlier bucket
        assert snap["max_ms"] == pytest.approx(200.0)

    def test_empty_histogram_is_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }


# ----------------------------------------------------------------------
# /allocate
# ----------------------------------------------------------------------
class TestAllocate:
    def test_single_function_allocates_and_simulates(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate_text(
                        ML_ADD, name="f", args={"n": 3}
                    )
                    assert reply.status == 200
                    (res,) = reply.data["results"]
                    assert res["ok"] and res["name"] == "f"
                    assert res["returned"] == [5]
                    assert res["allocator"] == "hierarchical"
                    assert res["source"] == "computed"
                    assert res["error"] is None
                    assert re.fullmatch(
                        r"[0-9a-f]{64}", res["allocated_sha256"]
                    )

        run(main())

    def test_served_results_match_direct_allocate_module(self):
        """The parity contract: the service is a transport, not a second
        allocator.  Same workloads direct vs served -> identical
        fingerprints, hashes, spill sets and simulated costs."""
        workloads = synthetic_module(6, seed=5)
        direct = allocate_module(
            workloads, batch=BatchConfig(batch_workers=0, simulate=True)
        )
        specs = [
            {
                "text": format_function(w.fn),
                "name": w.label(),
                "args": dict(w.args),
                "arrays": {k: list(v) for k, v in w.arrays.items()},
            }
            for w in workloads
        ]

        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate(specs)
                    assert reply.status == 200
                    return reply.data["results"]

        served = run(main())
        assert [r["name"] for r in served] == [r.name for r in direct]
        for payload, result in zip(served, direct):
            record = result.record
            assert payload["ok"]
            assert payload["fingerprint"] == result.fingerprint
            assert payload["allocated_sha256"] == record.allocated_sha256
            assert payload["blocks"] == record.blocks
            assert payload["spilled"] == list(record.spilled)
            assert payload["static_costs"] == dict(record.static_costs)
            assert payload["costs"] == dict(record.costs)
            assert payload["returned"] == record.returned

    def test_include_text_returns_allocated_program(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    bare = await client.allocate([{"text": ML_ADD}])
                    full = await client.allocate(
                        [{"text": ML_ADD}], include_text=True
                    )
                    assert "allocated_text" not in bare.data["results"][0]
                    text = full.data["results"][0]["allocated_text"]
                    assert "start=" in text  # textual IR came back

        run(main())

    def test_second_request_hits_shared_cache(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    first = await client.allocate_text(ML_ADD, args={"n": 1})
                    warm = await client.allocate_text(ML_ADD, args={"n": 1})
                    assert first.data["results"][0]["cached"] is False
                    res = warm.data["results"][0]
                    assert res["cached"] is True and res["source"] == "memory"
                    assert (
                        res["allocated_sha256"]
                        == first.data["results"][0]["allocated_sha256"]
                    )
                assert svc.engine.stats.computed == 1
                assert svc.engine.stats.cache_hits == 1

        run(main())

    def test_streaming_yields_one_line_per_function_in_order(self):
        async def main():
            specs = [{"text": ml_source(i), "args": {"n": 4}}
                     for i in range(5)]
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate(specs, stream=True)
                    assert reply.status == 200
                    *lines, done = reply.lines
                    assert len(lines) == 5
                    assert [ln["index"] for ln in lines] == list(range(5))
                    assert [ln["name"] for ln in lines] == [
                        f"k{i}" for i in range(5)
                    ]
                    assert all(ln["ok"] for ln in lines)
                    assert done == {"done": 5, "coalesced": 0}

        run(main())


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_submissions_one_engine_miss(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    tasks = [
                        asyncio.ensure_future(
                            client.allocate_text(ML_ADD, args={"n": 9})
                        )
                        for _ in range(8)
                    ]
                    # all eight admitted: one real entry, seven attached
                    await wait_until(lambda: svc._coalesced_total == 7)
                    assert len(svc._inflight) == 1
                    assert len(svc._pending) == 1
                    svc.resume_dispatch()
                    replies = await asyncio.gather(*tasks)
                    hashes = set()
                    coalesced_flags = []
                    for reply in replies:
                        assert reply.status == 200
                        (res,) = reply.data["results"]
                        assert res["ok"]
                        hashes.add(res["allocated_sha256"])
                        coalesced_flags.append(res["coalesced"])
                    assert len(hashes) == 1
                    assert sorted(coalesced_flags) == [False] + [True] * 7
                # the whole burst cost exactly one engine miss
                assert svc.engine.stats.computed == 1
                assert svc.engine.stats.functions == 1

        run(main())

    def test_only_duplicates_coalesce_across_requests(self):
        async def main():
            f1, f2, f3 = (ml_source(i) for i in (1, 2, 3))
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    first = asyncio.ensure_future(
                        client.allocate([{"text": f1}, {"text": f2}])
                    )
                    await wait_until(lambda: len(svc._inflight) == 2)
                    second = asyncio.ensure_future(
                        client.allocate([{"text": f2}, {"text": f3}])
                    )
                    await wait_until(lambda: len(svc._inflight) == 3)
                    svc.resume_dispatch()
                    reply_a, reply_b = await asyncio.gather(first, second)
                    flags_a = [r["coalesced"]
                               for r in reply_a.data["results"]]
                    flags_b = [r["coalesced"]
                               for r in reply_b.data["results"]]
                    assert flags_a == [False, False]
                    assert flags_b == [True, False]  # f2 rode along
                assert svc.engine.stats.computed == 3  # f1, f2, f3

        run(main())

    def test_duplicates_within_one_request_share_an_entry(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate(
                        [{"text": ML_ADD, "name": "a"},
                         {"text": ML_ADD, "name": "b"}]
                    )
                    first, dup = reply.data["results"]
                    assert (first["coalesced"], dup["coalesced"]) == (
                        False, True,
                    )
                    assert (
                        first["allocated_sha256"] == dup["allocated_sha256"]
                    )
                assert svc.engine.stats.computed == 1

        run(main())


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_returns_deterministic_429(self):
        async def main():
            config = service_config(queue_limit=2, retry_after_s=7)
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    filler = asyncio.ensure_future(client.allocate(
                        [{"text": ml_source(1)}, {"text": ml_source(2)}]
                    ))
                    await wait_until(lambda: len(svc._pending) == 2)
                    rejected = await client.allocate(
                        [{"text": ml_source(3)}]
                    )
                    assert rejected.status == 429
                    assert rejected.data["error_class"] == "overloaded"
                    assert rejected.data["queue_limit"] == 2
                    assert rejected.headers["retry-after"] == "7"
                    svc.resume_dispatch()
                    assert (await filler).status == 200
                    # capacity freed: the same submission now succeeds
                    retried = await client.allocate(
                        [{"text": ml_source(3)}]
                    )
                    assert retried.status == 200
                assert svc._rejected_total == 1

        run(main())

    def test_admission_is_all_or_nothing(self):
        async def main():
            config = service_config(queue_limit=3)
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    filler = asyncio.ensure_future(client.allocate(
                        [{"text": ml_source(1)}, {"text": ml_source(2)}]
                    ))
                    await wait_until(lambda: len(svc._pending) == 2)
                    # two new functions, one free slot: rejected whole,
                    # nothing admitted, cache not half-warmed
                    rejected = await client.allocate(
                        [{"text": ml_source(3)}, {"text": ml_source(4)}]
                    )
                    assert rejected.status == 429
                    assert len(svc._pending) == 2
                    assert len(svc._inflight) == 2
                    # one new function still fits
                    fits = asyncio.ensure_future(
                        client.allocate([{"text": ml_source(3)}])
                    )
                    await wait_until(lambda: len(svc._pending) == 3)
                    svc.resume_dispatch()
                    replies = await asyncio.gather(filler, fits)
                    assert [r.status for r in replies] == [200, 200]

        run(main())

    def test_coalesced_work_needs_no_queue_slot(self):
        async def main():
            config = service_config(queue_limit=1)
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    first = asyncio.ensure_future(
                        client.allocate([{"text": ML_ADD}])
                    )
                    await wait_until(lambda: len(svc._pending) == 1)
                    # queue is full, but an identical submission attaches
                    # to the in-flight entry instead of being rejected
                    rider = asyncio.ensure_future(
                        client.allocate([{"text": ML_ADD}])
                    )
                    await wait_until(lambda: svc._coalesced_total == 1)
                    svc.resume_dispatch()
                    reply_a, reply_b = await asyncio.gather(first, rider)
                    assert reply_a.status == reply_b.status == 200
                    assert reply_b.data["results"][0]["coalesced"] is True
                assert svc._rejected_total == 0

        run(main())


# ----------------------------------------------------------------------
# malformed input: classified 400s, never 500s
# ----------------------------------------------------------------------
class TestBadRequests:
    def _serve(self, **kwargs):
        return AllocationService(service_config(**kwargs))

    def test_malformed_bodies_are_classified_400s(self):
        bad_bodies = [
            b"{nope",                                # not JSON
            b"[]",                                   # not an object
            b'{"functions": {}}',                    # wrong container
            b'{"functions": []}',                    # empty module
            b'{"functions": [42]}',                  # not a spec
            b'{"functions": [{"name": "f"}]}',       # missing text
            b'{"functions": [{"text": 7}]}',         # text not a string
        ]

        async def main():
            async with self._serve() as svc:
                for body in bad_bodies:
                    response = await raw_roundtrip(svc.port, request_bytes(
                        "POST", "/allocate", "t", body
                    ))
                    payload = json.loads(response.body)
                    assert response.status == 400, body
                    assert payload["error_class"] == "bad_request", body
                # nothing malformed ever reached the engine
                assert svc.engine.stats.functions == 0

        run(main())

    def test_unparseable_functions_report_taxonomy_classes(self):
        async def main():
            async with self._serve() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate([
                        {"text": "func broken("},          # MiniLang error
                        {"text": "func f() start=e\nnonsense"},  # IR error
                        {"text": ML_ADD, "args": {"n": "three"}},
                        {"text": ML_ADD, "lang": "klingon"},
                    ])
                    assert reply.status == 400
                    errors = reply.data["errors"]
                    assert [e["index"] for e in errors] == [0, 1, 2, 3]
                    assert errors[0]["error_class"] == "parse"
                    assert errors[1]["error_class"] == "parse"
                    assert errors[2]["error_class"] == "bad_request"
                    assert errors[3]["error_class"] == "bad_request"

        run(main())

    def test_one_bad_function_rejects_whole_request_without_allocating(self):
        async def main():
            async with self._serve() as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate([
                        {"text": ML_ADD},         # fine on its own
                        {"text": "func oops {"},  # broken
                    ])
                    assert reply.status == 400
                    assert len(reply.data["errors"]) == 1
                # the good function was NOT allocated: a 400 is free
                assert svc.engine.stats.functions == 0
                assert svc.engine.stats.computed == 0

        run(main())

    def test_routing_and_protocol_errors(self):
        async def main():
            async with self._serve(max_body_bytes=256) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    lost = await client.request("GET", "/nope")
                    assert (lost.status, lost.data["error_class"]) == (
                        404, "not_found",
                    )
                    wrong = await client.request("GET", "/allocate")
                    assert (wrong.status, wrong.data["error_class"]) == (
                        405, "method_not_allowed",
                    )
                    wrong2 = await client.request("POST", "/metrics")
                    assert wrong2.status == 405
                big = await raw_roundtrip(svc.port, request_bytes(
                    "POST", "/allocate", "t", b"x" * 1000
                ))
                assert big.status == 413
                assert json.loads(big.body)["error_class"] == "protocol"
                old = await raw_roundtrip(
                    svc.port, b"GET /healthz HTTP/2\r\n\r\n"
                )
                assert old.status == 505

        run(main())

    def test_too_many_functions_is_rejected_up_front(self):
        async def main():
            async with self._serve(max_functions=2) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate(
                        [{"text": ml_source(i)} for i in range(3)]
                    )
                    assert reply.status == 400
                    assert "max_functions" in reply.data["message"]
                assert svc.engine.stats.functions == 0

        run(main())

    def test_error_classes_are_the_documented_set(self):
        """Every error class a test above observed is in the public
        table SERVICE.md documents."""
        for error_class in (
            "bad_request", "unadmittable", "overloaded", "draining",
            "shutdown", "not_found", "method_not_allowed", "protocol",
            "internal",
        ):
            assert error_class in SERVICE_ERROR_CLASSES


def _oversized_source(width: int = 150) -> str:
    """A MiniLang function whose estimate_cost is far over any small
    admission limit (width variables all live into one reduction)."""
    decls = " ".join(f"var v{i} = {i};" for i in range(width))
    uses = " + ".join(f"v{i}" for i in range(width))
    return f"func big(n) {{ {decls} return {uses}; }}"


class TestCostAdmission:
    def test_over_limit_function_is_413_unadmittable(self):
        async def main():
            config = service_config(batch_kwargs={"admission_limit": 500})
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    ok = await client.allocate_text(
                        ML_ADD, name="small", args={"n": 1}
                    )
                    assert ok.status == 200  # small work still admitted
                    reply = await client.allocate(
                        [{"text": _oversized_source(), "name": "big"}]
                    )
                    assert reply.status == 413
                    assert reply.data["error_class"] == "unadmittable"
                    assert reply.data["admission_limit"] == 500
                    (over,) = reply.data["functions"]
                    assert over["name"] == "big" and over["cost"] > 500
                    # All-or-nothing: one oversized function rejects the
                    # whole request, and the small one never half-warms
                    # the cache under a new name.
                    mixed = await client.allocate([
                        {"text": ML_ADD, "name": "small2"},
                        {"text": _oversized_source(), "name": "big2"},
                    ])
                    assert mixed.status == 413
                    (over2,) = mixed.data["functions"]
                    assert over2["name"] == "big2" and over2["index"] == 1
                    metrics = await client.metrics()
                    assert metrics.data["service"]["unadmitted"] == 2

        run(main())

    def test_rejection_is_deterministic_across_resubmission(self):
        async def main():
            config = service_config(batch_kwargs={"admission_limit": 500})
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    replies = [
                        await client.allocate(
                            [{"text": _oversized_source(), "name": "big"}]
                        )
                        for _ in range(2)
                    ]
                    assert [r.status for r in replies] == [413, 413]
                    assert replies[0].data == replies[1].data

        run(main())


# ----------------------------------------------------------------------
# /metrics and /healthz
# ----------------------------------------------------------------------
class TestObservability:
    def test_metrics_projects_engine_stats_and_latency(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    await client.allocate([{"text": ML_ADD}])
                    await client.allocate([{"text": ML_ADD}])  # warm
                    reply = await client.metrics()
                    assert reply.status == 200
                    engine = reply.data["engine"]
                    assert engine["functions"] == 2
                    assert engine["computed"] == 1
                    assert engine["hits"] == 1
                    service = reply.data["service"]
                    assert service["requests"]["allocate"] == 2
                    assert service["responses"]["200"] >= 2
                    assert service["functions"] == 2
                    assert service["queue"]["limit"] == 1024
                    hist = service["latency_ms"]["allocate"]
                    assert hist["count"] == 2
                    assert 0 < hist["p50_ms"] <= hist["p99_ms"]

        run(main())

    def test_healthz_ok_inline(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.healthz()
                    assert reply.status == 200
                    assert reply.data["status"] == "ok"
                    assert reply.data["pool"]["running"] is False
                    assert reply.data["config"]["queue_limit"] == 1024
                    assert reply.data["degradation"]["failures"] == 0

        run(main())

    def test_healthz_observes_injected_pool_kill(self, monkeypatch):
        """The PR-5 fault plan kills a pooled worker mid-task; the
        engine restarts the pool and retries, and /healthz surfaces the
        restart while the allocation still succeeds."""
        monkeypatch.setenv(ENV_VAR, json.dumps([
            {"task": 0, "attempt": 0, "action": "kill"},
        ]))

        async def main():
            config = service_config(batch_kwargs={
                "batch_workers": 1, "retry_backoff_s": 0.0,
            })
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    reply = await client.allocate(
                        [{"text": ml_source(1)}, {"text": ml_source(2)}]
                    )
                    assert reply.status == 200
                    assert all(r["ok"] for r in reply.data["results"])
                    health = await client.healthz()
                    assert health.data["status"] == "ok"  # recovered
                    degradation = health.data["degradation"]
                    assert degradation["pool_restarts"] == 1
                    assert degradation["retries"] >= 1
                    assert health.data["pool"]["restarts"] == 1

        run(main())

    def test_healthz_flips_to_degraded_when_worker_dies(self):
        """Kill the (idle) pool worker directly: /healthz reports
        degraded; the next allocation restarts the pool and health
        returns to ok."""
        async def main():
            config = service_config(batch_kwargs={
                "batch_workers": 1, "retry_backoff_s": 0.0,
            })
            async with AllocationService(config) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    await client.allocate([{"text": ml_source(1)}])
                    for process in list(
                        svc.engine._pool._processes.values()
                    ):
                        process.terminate()
                        process.join()
                    degraded = await client.healthz()
                    assert degraded.data["status"] == "degraded"
                    assert degraded.data["pool"]["alive"] == 0
                    # next miss trips BrokenProcessPool -> pool restart
                    reply = await client.allocate([{"text": ml_source(2)}])
                    assert reply.status == 200
                    assert reply.data["results"][0]["ok"]
                    recovered = await client.healthz()
                    assert recovered.data["status"] == "ok"
                    assert recovered.data["pool"]["restarts"] >= 1

        run(main())


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_drain_answers_inflight_and_rejects_new(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                client = ServiceClient("127.0.0.1", svc.port)
                # hold the drain open under our control
                release = asyncio.Event()
                original_drain = svc._drain_work

                async def gated_drain():
                    await release.wait()
                    await original_drain()

                svc._drain_work = gated_drain
                svc.pause_dispatch()
                inflight = asyncio.ensure_future(
                    client.allocate([{"text": ML_ADD}])
                )
                await wait_until(lambda: len(svc._inflight) == 1)
                shutdown = asyncio.ensure_future(svc.shutdown())
                await wait_until(lambda: svc._draining)
                # already-accepted work is answered (shutdown re-opened
                # the dispatch gate), even while the drain is held open
                reply = await inflight
                assert reply.status == 200
                assert reply.data["results"][0]["ok"]
                # but new submissions are turned away as draining
                rejected = await client.allocate([{"text": ml_source(9)}])
                assert rejected.status == 503
                assert rejected.data["error_class"] == "draining"
                assert rejected.headers["retry-after"] == "1"
                health = await client.healthz()
                assert health.data["status"] == "draining"
                await client.close()
                release.set()
                await shutdown

        run(main())

    def test_shutdown_drops_no_accepted_responses(self):
        async def main():
            async with AllocationService(service_config()) as svc:
                async with ServiceClient("127.0.0.1", svc.port) as client:
                    svc.pause_dispatch()
                    tasks = [
                        asyncio.ensure_future(
                            client.allocate([{"text": ml_source(i)}])
                        )
                        for i in range(10)
                    ]
                    await wait_until(lambda: len(svc._inflight) == 10)
                    # shutdown races the responses -- every accepted
                    # request must still get a real 200
                    shutdown = asyncio.ensure_future(svc.shutdown())
                    replies = await asyncio.gather(*tasks)
                    assert [r.status for r in replies] == [200] * 10
                    assert all(
                        r.data["results"][0]["ok"] for r in replies
                    )
                    await shutdown
                assert svc.engine.stats.computed == 10

        run(main())

    def test_drain_timeout_fails_leftovers_with_shutdown_class(self):
        class StuckGate(asyncio.Event):
            """set() is a no-op so shutdown cannot re-open dispatch;
            force() is the real set, used to let the dispatcher exit."""

            def set(self) -> None:
                pass

            def force(self) -> None:
                super().set()

        async def main():
            config = service_config(drain_timeout_s=0.2)
            async with AllocationService(config) as svc:
                svc._dispatch_gate = StuckGate()
                client = ServiceClient("127.0.0.1", svc.port)
                stuck = asyncio.ensure_future(
                    client.allocate([{"text": ML_ADD}])
                )
                await wait_until(lambda: len(svc._inflight) == 1)
                shutdown = asyncio.ensure_future(svc.shutdown())
                # past drain_timeout_s the future is failed, the request
                # answered with a structured shutdown error, not dropped
                reply = await stuck
                assert reply.status == 200
                (res,) = reply.data["results"]
                assert res["ok"] is False
                assert res["error"]["error_class"] == "shutdown"
                await client.close()
                svc._dispatch_gate.force()
                await shutdown

        run(main())

    def test_shutdown_is_idempotent(self):
        async def main():
            svc = AllocationService(service_config())
            await svc.start()
            await asyncio.gather(svc.shutdown(), svc.shutdown())
            await svc.shutdown()

        run(main())


# ----------------------------------------------------------------------
# the CLI front door
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_serve_starts_answers_and_drains_on_sigterm(self):
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        try:
            line = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert match, f"no listening line, got {line!r}"
            port = int(match.group(1))

            async def poke():
                async with ServiceClient("127.0.0.1", port) as client:
                    reply = await client.allocate_text(
                        ML_ADD, args={"n": 5}
                    )
                    assert reply.status == 200
                    assert reply.data["results"][0]["returned"] == [7]
                    health = await client.healthz()
                    assert health.data["status"] == "ok"

            run(poke())
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "draining" in stdout and "service stopped" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
