"""Tests for DOT rendering."""

from repro.analysis.liveness import compute_liveness
from repro.graph.interference import build_interference
from repro.tiles import build_tile_tree
from repro.viz import cfg_to_dot, interference_to_dot, tile_tree_to_dot
from repro.workloads.kernels import dot


class TestCfgDot:
    def test_contains_all_blocks_and_edges(self, loop_fn):
        text = cfg_to_dot(loop_fn)
        assert text.startswith("digraph")
        for label in loop_fn.blocks:
            assert f'"{label}"' in text
        for src, dst in loop_fn.edges():
            assert f'"{src}" -> "{dst}"' in text

    def test_instrs_optional(self, loop_fn):
        with_instrs = cfg_to_dot(loop_fn, include_instrs=True)
        without = cfg_to_dot(loop_fn, include_instrs=False)
        assert "cmplt" in with_instrs
        assert "cmplt" not in without

    def test_escaping(self):
        from repro.ir.builder import FunctionBuilder

        b = FunctionBuilder('we"ird')
        b.block("one")
        b.const("x", 1)
        b.ret("x")
        fn = b.finish()
        text = cfg_to_dot(fn)
        assert '\\"' in text


class TestTileTreeDot:
    def test_clusters_nest(self):
        fn = dot()
        tree = build_tile_tree(fn)
        text = tile_tree_to_dot(tree)
        assert text.count("subgraph") == len(tree.tiles())
        assert "cluster_" in text
        assert '"head"' in text


class TestInterferenceDot:
    def test_edges_and_labels(self, loop_fn):
        graph = build_interference(loop_fn, compute_liveness(loop_fn))
        text = interference_to_dot(graph, assignment={"i": "R0"})
        assert text.startswith("graph")
        assert '"i" [label="i\\nR0"]' in text
        assert "--" in text
