"""The adversarial corpus and its survival contract.

Pins the properties the guard bench (``benchmarks/bench_guard.py``)
builds on:

* every generator is seed-reproducible (same seed -> bit-identical
  program or source, hypothesis-checked);
* every IR family emits *valid* functions that an unbudgeted allocator
  completes -- the corpus is hostile, not malformed;
* each family actually exhibits its advertised pathology (tall tile
  trees, irreducible tiles, dense interference with spills);
* under governance the whole corpus completes, degrades, or is rejected
  with a classified error -- no uncaught exception escapes;
* MiniLang depth attacks get a classified ``MiniLangError`` from the
  parser's depth limit, shallow nests still compile.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import BatchConfig, BatchEngine
from repro.core import HierarchicalAllocator
from repro.ir.printer import format_function
from repro.ir.validate import validate_function
from repro.machine.target import Machine
from repro.minilang import compile_source
from repro.minilang.lexer import MiniLangError
from repro.minilang.parser import MAX_PARSE_DEPTH
from repro.pipeline import Workload
from repro.tiles.construction import build_tile_tree
from repro.workloads.adversarial import (
    FAMILIES,
    adversarial_corpus,
    deep_loop_nest,
    deep_minilang_source,
    high_degree_clique,
    irreducible_mesh,
    spill_churn,
)

MACHINE = Machine.simple(8)
SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSeedReproducibility:
    @COMMON
    @given(seed=SEEDS)
    def test_ir_generators_are_pure_functions_of_their_seed(self, seed):
        for gen, kwargs in (
            (deep_loop_nest, {"depth": 6}),
            (irreducible_mesh, {"size": 6}),
            (high_degree_clique, {"width": 10}),
            (spill_churn, {"phases": 3, "width": 4}),
        ):
            first = format_function(gen(seed, **kwargs))
            second = format_function(gen(seed, **kwargs))
            assert first == second, gen.__name__

    @COMMON
    @given(seed=SEEDS)
    def test_minilang_source_is_reproducible(self, seed):
        assert deep_minilang_source(seed, depth=30) == deep_minilang_source(
            seed, depth=30
        )

    def test_corpus_is_reproducible_and_covers_every_family(self):
        first, second = adversarial_corpus(7), adversarial_corpus(7)
        assert [c.name for c in first] == [c.name for c in second]
        for a, b in zip(first, second):
            if a.fn is not None:
                assert format_function(a.fn) == format_function(b.fn)
            else:
                assert a.source == b.source
        assert {c.family for c in first} == set(FAMILIES)

    def test_distinct_seeds_give_distinct_corpora(self):
        names_a = [c.name for c in adversarial_corpus(1)]
        names_b = [c.name for c in adversarial_corpus(2)]
        assert names_a != names_b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            deep_loop_nest(0, depth=0)
        with pytest.raises(ValueError):
            irreducible_mesh(0, size=2)
        with pytest.raises(ValueError):
            high_degree_clique(0, width=1)
        with pytest.raises(ValueError):
            spill_churn(0, phases=1)
        with pytest.raises(ValueError):
            deep_minilang_source(0, depth=0)
        with pytest.raises(ValueError):
            adversarial_corpus(0, scale=0)


class TestFamilyPathologies:
    def test_ir_cases_are_valid_and_allocatable_unbudgeted(self):
        for case in adversarial_corpus(5):
            if case.fn is None:
                continue
            validate_function(case.fn)
            outcome = HierarchicalAllocator().allocate(case.fn, MACHINE)
            assert outcome.fn is not None, case.name

    def test_deep_nest_builds_a_tall_tile_tree(self):
        tree = build_tile_tree(deep_loop_nest(3, depth=12))
        assert tree.height() >= 12

    def test_mesh_produces_an_irreducible_tile(self):
        tree = build_tile_tree(irreducible_mesh(3, size=8))
        assert "irreducible" in {t.kind for t in tree.preorder()}

    def test_clique_forces_spills_at_eight_registers(self):
        outcome = HierarchicalAllocator().allocate(
            high_degree_clique(3, width=32), MACHINE
        )
        assert outcome.stats.spilled_vars

    def test_churn_forces_spills_at_eight_registers(self):
        outcome = HierarchicalAllocator().allocate(
            spill_churn(3, phases=8, width=8), MACHINE
        )
        assert outcome.stats.spilled_vars


class TestMiniLangDepthAttack:
    def test_shallow_nest_compiles(self):
        fn = compile_source(deep_minilang_source(1, depth=20))
        assert len(fn.blocks) > 20

    def test_deep_nest_is_rejected_classified(self):
        with pytest.raises(MiniLangError, match="depth limit"):
            compile_source(
                deep_minilang_source(1, depth=MAX_PARSE_DEPTH + 40)
            )

    def test_corpus_marks_the_rejecting_case(self):
        cases = [
            c for c in adversarial_corpus(9) if c.family == "minilang_nest"
        ]
        assert {c.expect_reject for c in cases} == {True, False}


class TestGovernedSurvival:
    def test_whole_corpus_survives_a_tight_budget(self):
        """The bench gate in miniature: governed engine, hostile module,
        zero uncaught exceptions, every failure classified."""
        workloads = [
            Workload(c.fn, {"n": 5}, {}, name=c.name)
            for c in adversarial_corpus(11)
            if c.fn is not None
        ]
        config = BatchConfig(
            batch_workers=0, on_error="degrade",
            max_fuel=1000, admission_limit=5000,
        )
        with BatchEngine(batch=config) as engine:
            module = engine.allocate_module(workloads)
            stats = engine.stats
        assert all(r.ok for r in module.results)
        for result in module.results:
            if result.error is not None:
                assert result.error.error_class in (
                    "admission", "budget", "deadline"
                ), result.name
        # The corpus is calibrated to exercise every governed outcome.
        assert stats.rejected > 0
        assert stats.degraded_by_budget > 0
        assert any(r.error is None for r in module.results)
