"""Frozen pre-dense-array coloring engine, kept verbatim as a
differential-testing oracle.

This is the dict-based ``color_graph`` exactly as it shipped before the
select loop moved onto dense arrays (commit b80a166's version, function
renamed).  The hypothesis differentials in ``test_coloring.py`` drive the
live engine and this oracle with identical inputs and assert bit-identical
results -- assignment, spilled set, used-color order, and stack order.

Not a test module (no ``test_`` prefix); imported as
``tests._coloring_oracle``.
"""

from __future__ import annotations

import heapq
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graph.coloring import ColoringResult, NoColorForRequiredNode
from repro.graph.interference import InterferenceGraph


def oracle_color_graph(
    graph: InterferenceGraph,
    k: int,
    color_order: Sequence[str],
    priorities: Optional[Mapping[str, float]] = None,
    precolored: Optional[Mapping[str, str]] = None,
    local_prefs: Optional[Mapping[str, str]] = None,
    pref_pairs: Optional[Iterable[Tuple[str, str]]] = None,
    never_spill: Optional[Set[str]] = None,
    boundary: Optional[Set[str]] = None,
    pessimistic: bool = False,
    spill_heuristic: str = "cost_over_degree",
    trace_hook: Optional[Callable[[str, str, str], None]] = None,
) -> ColoringResult:
    """Color *graph* with at most *k* distinct colors.

    Args:
        graph: the conflict graph.
        k: ``|R|`` -- the maximum number of simultaneous colors.
        color_order: colors to draw fresh colors from, in preference order
            (physical registers for final binding, pseudo-register tokens
            during the bottom-up phase).  Colors introduced by *precolored*
            or *local_prefs* may lie outside this sequence; they count
            toward the *k* budget all the same.
        priorities: spill value per node -- higher means more deserving of
            a register (the paper's ``Weight``); missing nodes default 0.
        precolored: fixed assignments (linkage registers, parent bindings).
        local_prefs: desired color per node (paper's local preference).
        pref_pairs: pairs that would like to share a color.
        never_spill: nodes with infinite spill cost (operand temporaries);
            failure to color one raises :class:`NoColorForRequiredNode`.
        boundary: nodes that try for a fresh color before reusing one.
        pessimistic: use original-Chaitin behaviour -- a node chosen as a
            spill candidate is spilled immediately instead of optimistically
            pushed (ablation only).
        spill_heuristic: how the next spill candidate is ranked --
            ``"cost_over_degree"`` (Chaitin's ratio, the paper's choice),
            ``"cost"`` (pure benefit, Bernstein-style single criterion), or
            ``"degree"`` (most-constraining node first).  The paper notes
            "our algorithm could easily use either method".
        trace_hook: observational callback ``(node, color, kind)`` invoked
            when a preference is honored -- ``kind`` is ``"local"`` for a
            local-preference hit, ``"partner"`` for an inherited partner
            color (see :mod:`repro.trace`).
    """
    if spill_heuristic not in ("cost_over_degree", "cost", "degree"):
        raise ValueError(f"unknown spill heuristic {spill_heuristic!r}")
    # Inputs are only read, never mutated -- hold references, don't copy.
    priorities = priorities if priorities is not None else {}
    precolored = precolored if precolored is not None else {}
    local_prefs = local_prefs if local_prefs is not None else {}
    never_spill = never_spill if never_spill is not None else frozenset()
    boundary = boundary if boundary is not None else frozenset()

    # ------------------------------------------------------------------
    # Lower names to ids.  Graph nodes keep their graph ids; precolored
    # nodes and preference-pair members absent from the graph get fresh
    # ids above them (local to this call -- the graph is not mutated).
    # ------------------------------------------------------------------
    g_ids = graph.node_ids()
    g_names = graph.id_names()
    masks = graph.id_masks()
    # Copy-on-write: extras (precolored nodes or pair members outside the
    # graph) are rare, so the graph's own dicts are shared until the first
    # fresh interning actually happens.
    ids: Dict[str, int] = g_ids
    names: Dict[int, str] = g_names
    nxt = graph._next

    def local_intern(var: str) -> int:
        nonlocal nxt, ids, names
        i = ids.get(var)
        if i is None:
            if ids is g_ids:
                ids = dict(g_ids)
                names = dict(g_names)
            i = nxt
            nxt += 1
            ids[var] = i
            names[i] = var
        return i

    partners: Dict[int, Set[int]] = {}
    for a, b in pref_pairs or ():
        if a == b:
            continue
        ia = local_intern(a)
        ib = local_intern(b)
        partners.setdefault(ia, set()).add(ib)
        partners.setdefault(ib, set()).add(ia)
    # Partner inspection takes the lowest *name*; pre-sort once.
    partner_sorted: Dict[int, List[int]] = (
        {i: sorted(s, key=names.__getitem__) for i, s in partners.items()}
        if partners
        else {}
    )

    # Colors are interned too, so forbidden/avoid sets are bitmasks.
    cids: Dict[str, int] = {}
    cnames: List[str] = []

    def cintern(color: str) -> int:
        ci = cids.get(color)
        if ci is None:
            ci = len(cnames)
            cids[color] = ci
            cnames.append(color)
        return ci

    color_order_ids = [cintern(c) for c in color_order]

    # The algorithm's node set: graph nodes plus precolored extras (the
    # extras are precolored, so they never enter a heap and need no degree
    # or priority entries).
    precolored_ids: Dict[int, int] = {}
    for var, color in precolored.items():
        precolored_ids[local_intern(var)] = cintern(color)

    never_mask = 0
    for var in never_spill:
        i = ids.get(var)
        if i is not None:
            never_mask |= 1 << i
    boundary_mask = 0
    for var in boundary:
        i = ids.get(var)
        if i is not None:
            boundary_mask |= 1 << i

    # ------------------------------------------------------------------
    # Simplify: push nodes onto the colorable stack.
    # ------------------------------------------------------------------
    # One C-level dict copy of the memoized degree map replaces the
    # per-call bit_count loop; ``prio`` is filled only for nodes whose
    # *initial* degree reaches k -- degrees only ever decrease, so no other
    # node can enter the spill heap.
    degrees: Dict[int, int] = dict(graph.degree_map())
    remaining_mask = 0
    stack: List[int] = []
    spilled: Set[str] = set()
    prio: Dict[int, float] = {}
    priorities_get = priorities.get
    masks_get = masks.get
    nbrs = graph.neighbor_ids()
    nbrs_get = nbrs.get

    if spill_heuristic == "cost":

        def spill_metric(i: int, degree: int) -> float:
            return math.inf if never_mask >> i & 1 else prio[i]

    elif spill_heuristic == "degree":

        def spill_metric(i: int, degree: int) -> float:
            return math.inf if never_mask >> i & 1 else -max(degree, 1)

    else:

        def spill_metric(i: int, degree: int) -> float:
            if never_mask >> i & 1:
                return math.inf
            return prio[i] / max(degree, 1)

    # Ranks replace name comparisons: rank(v) is v's position in the
    # graph's sorted name list, so (degree, rank) orders exactly like
    # (degree, name) did -- only undecided nodes ever meet in a heap, and
    # global ranks restricted to them are order-isomorphic to their own
    # sorted positions.  Ranks are unique, so later tuple elements never
    # tie-break.  The rank table is memoized on the graph across recolor
    # rounds and phases.
    rank, id_of_rank = graph.name_ranks()

    # Two lazy heaps drive node selection: ``low_heap`` orders the
    # trivially-colorable nodes by (degree, rank), ``spill_heap`` orders
    # the constrained (degree >= k) nodes by (spill metric, rank).  Entries
    # go stale when a degree drops; a fresh entry is pushed on every
    # decrement, so an entry is valid exactly when its recorded degree
    # matches the current one.  Nodes below k never need a spill entry: a
    # node whose degree is < k always has a valid low_heap entry, so the
    # spill pick -- which runs only when no such entry exists -- can never
    # select it.  Pop order is lowest (degree, rank) among sub-k nodes,
    # else lowest (metric, rank) overall, at O(log) per operation.
    low_heap: List[Tuple[int, int]] = []
    spill_heap: List[Tuple[float, int, int]] = []
    for i, d in degrees.items():
        if i in precolored_ids:
            continue
        remaining_mask |= 1 << i
        if d < k:
            low_heap.append((d, rank[i]))
        else:
            prio[i] = priorities_get(names[i], 0.0)
            spill_heap.append((spill_metric(i, d), rank[i], d))
    heapq.heapify(low_heap)
    heapq.heapify(spill_heap)

    heappush = heapq.heappush

    def decrement_neighbors(i: int) -> None:
        for other in nbrs_get(i, ()):
            d = degrees[other] = degrees[other] - 1
            if remaining_mask >> other & 1:
                if d < k:
                    heappush(low_heap, (d, rank[other]))
                else:
                    heappush(
                        spill_heap, (spill_metric(other, d), rank[other], d)
                    )

    heappop = heapq.heappop
    while remaining_mask:
        var = -1
        while low_heap:
            d, r = heappop(low_heap)
            v = id_of_rank[r]
            if remaining_mask >> v & 1 and degrees[v] == d:
                var = v
                break
        if var < 0:
            # All remaining nodes have >= k conflicts: pick the least
            # valuable as the next (potential) spill.
            while True:
                _, r, d = heappop(spill_heap)
                v = id_of_rank[r]
                if remaining_mask >> v & 1 and degrees[v] == d:
                    var = v
                    break
            if pessimistic and not never_mask >> var & 1:
                spilled.add(names[var])
                remaining_mask &= ~(1 << var)
                decrement_neighbors(var)
                continue
        remaining_mask &= ~(1 << var)
        stack.append(var)
        decrement_neighbors(var)

    # ------------------------------------------------------------------
    # Select: pop and color.
    # ------------------------------------------------------------------
    node_color: Dict[int, int] = dict(precolored_ids)
    assigned_mask = 0
    for i in node_color:
        assigned_mask |= 1 << i
    # Seed the reuse list in sorted color order: ``_pick`` returns the
    # first non-forbidden entry, so the list order is outcome-relevant and
    # must not inherit the caller's dict iteration order.
    used: List[int] = []
    used_mask = 0
    if precolored:
        for color in sorted(set(precolored.values())):
            ci = cids[color]
            if not used_mask >> ci & 1:
                used.append(ci)
                used_mask |= 1 << ci
    dynamic_prefs: Dict[int, int] = {
        local_intern(var): cintern(color)
        for var, color in local_prefs.items()
    }

    def forbidden_for(i: int) -> int:
        out = 0
        mask = masks_get(i, 0) & assigned_mask
        while mask:
            low = mask & -mask
            out |= 1 << node_color[low.bit_length() - 1]
            mask ^= low
        return out

    def neighbour_pref_colors(i: int) -> int:
        if not dynamic_prefs:  # nothing to avoid, skip the scan
            return 0
        out = 0
        mask = masks_get(i, 0) & ~assigned_mask
        while mask:
            low = mask & -mask
            ci = dynamic_prefs.get(low.bit_length() - 1)
            if ci is not None:
                out |= 1 << ci
            mask ^= low
        return out

    def fresh_color(forbidden: int) -> int:
        if len(used) >= k:
            return -1
        for ci in color_order_ids:
            if not used_mask >> ci & 1 and not forbidden >> ci & 1:
                return ci
        return -1

    def pick(forbidden: int) -> int:
        for ci in used:
            if not forbidden >> ci & 1:
                return ci
        return -1

    take_order: List[int] = []

    def take(i: int, ci: int) -> None:
        nonlocal assigned_mask, used_mask
        node_color[i] = ci
        assigned_mask |= 1 << i
        take_order.append(i)
        if not used_mask >> ci & 1:
            used.append(ci)
            used_mask |= 1 << ci
        for p in partner_sorted.get(i, ()):
            if p not in node_color and p not in dynamic_prefs:
                dynamic_prefs[p] = ci

    order: List[str] = []
    while stack:
        var = stack.pop()
        order.append(names[var])
        forbidden = forbidden_for(var)

        # 1. Explicit local preference wins when available.
        pref = dynamic_prefs.get(var)
        if pref is not None and not forbidden >> pref & 1:
            if used_mask >> pref & 1 or len(used) < k:
                take(var, pref)
                if trace_hook is not None:
                    trace_hook(names[var], cnames[pref], "local")
                continue

        # 2. A partner's color, when one is already colored.  Partner
        # lists are pre-sorted by name: the first assignable hit is taken.
        plist = partner_sorted.get(var)
        if plist:
            chosen = -1
            for p in plist:
                ci = node_color.get(p)
                if ci is not None and not forbidden >> ci & 1:
                    chosen = ci
                    break
            if chosen >= 0:
                take(var, chosen)
                if trace_hook is not None:
                    trace_hook(names[var], cnames[chosen], "partner")
                continue

        avoid = neighbour_pref_colors(var)

        # 3. Boundary globals try for a color distinct from all used ones.
        if boundary_mask >> var & 1:
            color = fresh_color(forbidden | avoid)
            if color < 0:
                color = fresh_color(forbidden)
            if color >= 0:
                take(var, color)
                continue

        # 4. Reuse an existing color, avoiding neighbours' preferences.
        color = pick(forbidden | avoid)
        if color < 0:
            color = fresh_color(forbidden | avoid)
        # 5. "Revert to standard coloring": ignore preference avoidance.
        if color < 0:
            color = pick(forbidden)
        if color < 0:
            color = fresh_color(forbidden)

        if color >= 0:
            take(var, color)
        else:
            if never_mask >> var & 1:
                name = names[var]
                raise NoColorForRequiredNode(
                    f"node {name!r} has infinite spill cost but no color",
                    name,
                )
            spilled.add(names[var])

    # Materialize the string result: precolored entries first, then takes
    # in pop order -- the same insertion order as before.
    assignment: Dict[str, str] = dict(precolored)
    for i in take_order:
        assignment[names[i]] = cnames[node_color[i]]

    return ColoringResult(
        assignment=assignment,
        spilled=spilled,
        used_colors=[cnames[ci] for ci in used],
        stack_order=order,
    )
