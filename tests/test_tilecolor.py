"""Direct tests for the shared tile-coloring loop (operand temporaries)."""

import pytest

from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.core.summary import is_temp_node, temp_node_name
from repro.core.tilecolor import TileColoringSpec, color_tile
from repro.graph.interference import build_interference
from repro.ir.builder import FunctionBuilder
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed


def make_env(fn, registers=2):
    build = build_tile_tree_detailed(fn)
    ctx = build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )
    return ctx


def straightline_fn():
    """Five simultaneously live variables in one block."""
    b = FunctionBuilder("pressure", params=["p"])
    b.block("one")
    b.const("a", 1)
    b.const("bb", 2)
    b.const("cc", 3)
    b.const("dd", 4)
    b.add("t1", "a", "bb")
    b.add("t2", "cc", "dd")
    b.add("t3", "t1", "t2")
    b.add("t4", "t3", "p")
    b.ret("t4")
    return b.finish()


class TestColorTile:
    def _graph_for(self, ctx, tile):
        visible = set()
        for label in tile.own_blocks():
            visible |= ctx.fn.blocks[label].variables()
        graph = build_interference(
            ctx.fn, ctx.liveness, labels=sorted(tile.own_blocks()),
            relevant=visible,
        )
        return graph, visible

    def test_no_spills_with_plenty(self):
        ctx = make_env(straightline_fn(), registers=8)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        spec = TileColoringSpec(k=8, color_order=[f"p{i}" for i in range(8)])
        outcome = color_tile(ctx, tile, graph, spec)
        assert not outcome.spilled
        assert outcome.rounds == 1
        assert not outcome.temp_nodes

    def test_spills_create_temps(self):
        ctx = make_env(straightline_fn(), registers=2)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        spec = TileColoringSpec(k=2, color_order=["p0", "p1"])
        outcome = color_tile(ctx, tile, graph, spec)
        assert outcome.spilled
        assert outcome.temp_nodes
        # Every reference of every spilled variable has a colored temp.
        for var in outcome.spilled:
            for label in tile.own_blocks():
                for instr in ctx.fn.blocks[label].instrs:
                    if var in instr.uses:
                        temp = temp_node_name(instr.uid, var, "u")
                        assert outcome.assignment.get(temp) is not None
                    if var in instr.defs:
                        temp = temp_node_name(instr.uid, var, "d")
                        assert outcome.assignment.get(temp) is not None

    def test_temp_colors_within_budget(self):
        ctx = make_env(straightline_fn(), registers=2)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        spec = TileColoringSpec(k=2, color_order=["p0", "p1"])
        outcome = color_tile(ctx, tile, graph, spec)
        assert len(set(outcome.assignment.values())) <= 2

    def test_pre_spilled_skipped(self):
        ctx = make_env(straightline_fn(), registers=8)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        spec = TileColoringSpec(
            k=8, color_order=[f"p{i}" for i in range(8)],
            pre_spilled={"t1"},
        )
        outcome = color_tile(ctx, tile, graph, spec)
        assert "t1" in outcome.spilled
        assert "t1" not in outcome.assignment
        # t1's references got temps even though coloring never failed.
        assert any(":t1:" in t for t in outcome.temp_nodes)

    def test_reserve_mode_makes_no_temps(self):
        ctx = make_env(straightline_fn(), registers=2)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        spec = TileColoringSpec(
            k=1, color_order=["p0"], make_temps=False,
        )
        outcome = color_tile(ctx, tile, graph, spec)
        assert outcome.spilled
        assert not outcome.temp_nodes

    def test_victim_spilling_under_extreme_pressure(self):
        """A never-spill (precolored-adjacent) node squeezes an ordinary
        neighbour out instead of crashing."""
        ctx = make_env(straightline_fn(), registers=2)
        tile = ctx.tree.tile_of("one")
        graph, _ = self._graph_for(ctx, tile)
        # Force a no-spill constraint on two conflicting variables plus
        # temps: the engine must find victims, not raise.
        spec = TileColoringSpec(
            k=2, color_order=["p0", "p1"],
            never_spill={"a"},
            priorities={"a": 100.0},
        )
        outcome = color_tile(ctx, tile, graph, spec)
        assert "a" in outcome.assignment
