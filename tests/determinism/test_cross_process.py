"""Cross-process reproducibility gate (the PR-2 tentpole).

Allocation output -- assignments, inserted spill code, and simulated
costs -- must be bit-identical regardless of ``PYTHONHASHSEED`` and of
the worker count.  Every combination runs in a *fresh subprocess* so each
interpreter gets its own hash salt; fingerprints are only compared
between subprocesses (absolute tile ids depend on in-process history, so
an in-process fingerprint is not comparable to a subprocess one).

The workload list is the bench set, including the 428-block random
program that originally exposed the hash-order sensitivity.
"""

import json

import pytest

from repro.determinism import (
    DEFAULT_HASH_SEEDS,
    fingerprint_in_subprocess,
    workload_names,
)

WORKLOADS = workload_names()

#: (hash seed, parallel workers); 0 = the sequential driver, so the
#: matrix spans PYTHONHASHSEED x {sequential, 1 worker, N workers}.
MATRIX = [
    (seed, workers)
    for seed in DEFAULT_HASH_SEEDS
    for workers in (1, 4)
] + [(DEFAULT_HASH_SEEDS[0], 0)]


@pytest.fixture(scope="module")
def fingerprints():
    return {
        (seed, workers): fingerprint_in_subprocess(
            WORKLOADS, seed, workers=workers
        )
        for seed, workers in MATRIX
    }


def test_bench_set_includes_the_428_block_program():
    assert "rand_struct_428" in WORKLOADS


def test_three_distinct_hash_seeds_in_matrix():
    assert len(set(seed for seed, _ in MATRIX)) >= 3


@pytest.mark.parametrize("workload", WORKLOADS)
def test_bit_identical_across_seeds_and_workers(fingerprints, workload):
    baseline_key = MATRIX[0]
    baseline = fingerprints[baseline_key][workload]
    # Sanity: the fingerprint actually covers program, spills and costs.
    assert set(baseline) >= {"program_sha256", "spilled", "costs"}
    for key, run in fingerprints.items():
        assert run[workload] == baseline, (
            f"{workload}: (seed={key[0]}, workers={key[1]}) diverges from "
            f"(seed={baseline_key[0]}, workers={baseline_key[1]}):\n"
            f"baseline: {json.dumps(baseline, sort_keys=True)}\n"
            f"got:      {json.dumps(run[workload], sort_keys=True)}"
        )
