"""Tests for the top-down binding phase."""

import pytest

from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.summary import MEM, is_summary_var, is_temp_node
from repro.ir.instructions import is_phys
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1
from repro.workloads.kernels import dot, matmul, nested_cond


def both_phases(fn, registers=4, config=None):
    build = build_tile_tree_detailed(fn.clone())
    ctx = build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )
    config = config or HierarchicalConfig()
    allocations = run_phase1(ctx, config)
    run_phase2(ctx, config, allocations)
    return ctx, allocations


class TestBindings:
    @pytest.mark.parametrize("registers", [2, 3, 4, 8])
    def test_all_locations_physical_or_memory(self, registers):
        ctx, allocations = both_phases(figure1(), registers)
        for alloc in allocations.values():
            for node, loc in alloc.phys.items():
                assert loc == MEM or is_phys(loc), (node, loc)

    @pytest.mark.parametrize("registers", [2, 4])
    def test_no_conflicting_bindings(self, registers):
        ctx, allocations = both_phases(matmul(), registers)
        for alloc in allocations.values():
            for a, b in alloc.graph.edges():
                la = alloc.phys.get(a)
                lb = alloc.phys.get(b)
                if la not in (None, MEM) and lb not in (None, MEM):
                    assert la != lb, (a, b, alloc.tile_id)

    def test_register_range(self):
        ctx, allocations = both_phases(figure1(), 3)
        from repro.ir.instructions import phys_index

        for alloc in allocations.values():
            for loc in alloc.phys.values():
                if loc != MEM:
                    assert phys_index(loc) < 3

    def test_phase1_spills_never_undone(self):
        ctx, allocations = both_phases(figure1(), 2)
        for alloc in allocations.values():
            for var in alloc.spilled:
                if is_temp_node(var):
                    continue
                assert alloc.phys.get(var, MEM) == MEM

    def test_temps_bound_to_registers(self):
        ctx, allocations = both_phases(figure1(), 2)
        for alloc in allocations.values():
            for temp in alloc.temp_nodes:
                assert is_phys(alloc.phys[temp])


class TestParentChildAgreement:
    def test_globals_follow_parent_when_possible(self):
        """With ample registers, preferences make child bindings coincide
        with the parent's (no transfer moves needed)."""
        ctx, allocations = both_phases(dot(), 8)
        for tile in ctx.tree.preorder():
            if tile.parent is None:
                continue
            child = allocations[tile.tid]
            parent = allocations[tile.parent.tid]
            for var in child.globals_:
                pl = parent.phys.get(var)
                cl = child.phys.get(var)
                if pl not in (None, MEM) and cl not in (None, MEM):
                    assert pl == cl, (var, pl, cl)

    def test_summary_phys_recorded(self):
        ctx, allocations = both_phases(figure1(), 4)
        for tile in ctx.tree.preorder():
            alloc = allocations[tile.tid]
            for summary in alloc.summary_vars.values():
                assert summary in alloc.summary_phys

    def test_intruders_receive_locations(self):
        """Variables live across a tile but unreferenced in it (parent gave
        them registers) appear in the tile's phys map after phase 2."""
        ctx, allocations = both_phases(figure1(), 8)
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        alloc = allocations[loop1.tid]
        # g2 is unreferenced in loop 1 but live through; with 8 registers
        # the parent holds it in a register, so it must intrude.
        assert "g2" in alloc.phys


class TestDemotion:
    def test_demotion_respects_config(self):
        cfg_on = HierarchicalConfig(demotion=True)
        cfg_off = HierarchicalConfig(demotion=False)
        # Same program, both configurations must produce valid bindings.
        for cfg in (cfg_on, cfg_off):
            ctx, allocations = both_phases(nested_cond(), 3, cfg)
            for alloc in allocations.values():
                for node, loc in alloc.phys.items():
                    assert loc == MEM or is_phys(loc)
