"""Tests for live-variable analysis."""

from repro.analysis.liveness import block_use_def, compute_liveness
from repro.ir.builder import FunctionBuilder


class TestBlockUseDef:
    def test_upward_exposed_only(self, loop_fn):
        uses, defs = block_use_def(loop_fn.blocks["body"])
        # body: i = i + one; s = s + i -- i and one and s are upward exposed
        assert uses == {"i", "one", "s"}
        assert defs == {"i", "s"}

    def test_killed_use_not_exposed(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("one")
        b.const("x", 1)
        b.add("y", "x", "a")  # x defined above: not upward exposed
        b.ret("y")
        fn = b.finish()
        uses, defs = block_use_def(fn.blocks["one"])
        assert "x" not in uses
        assert "a" in uses


class TestLiveness:
    def test_loop_live_sets(self, loop_fn):
        lv = compute_liveness(loop_fn)
        assert lv.live_in["head"] >= {"i", "n", "one", "s"}
        assert "s" in lv.live_in["done"]
        assert lv.live_out[loop_fn.stop_label] == frozenset()

    def test_dead_after_last_use(self, diamond_fn):
        lv = compute_liveness(diamond_fn)
        # c is consumed by the branch; dead in both arms.
        assert "c" not in lv.live_in["then"]
        assert "c" not in lv.live_in["els"]

    def test_live_on_edge_is_target_live_in(self, loop_fn):
        lv = compute_liveness(loop_fn)
        assert lv.live_on_edge("head", "body") == lv.live_in["body"]

    def test_instr_live_out_shrinks_backwards(self, loop_fn):
        lv = compute_liveness(loop_fn)
        outs = lv.instr_live_out("body")
        assert len(outs) == len(loop_fn.blocks["body"].instrs)
        # After the final branch, liveness equals block live-out.
        assert outs[-1] == lv.live_out["body"]

    def test_instr_live_in_first_matches_block(self, loop_fn):
        lv = compute_liveness(loop_fn)
        ins = lv.instr_live_in("body")
        assert ins[0] == lv.live_in["body"]

    def test_local_dataflow_equation(self, loop_fn):
        """live_in = use U (live_out - def) for every block."""
        lv = compute_liveness(loop_fn)
        for label, block in loop_fn.blocks.items():
            uses, defs = block_use_def(block)
            expected = frozenset(uses | (lv.live_out[label] - defs))
            assert lv.live_in[label] == expected

    def test_live_out_is_union_of_successor_ins(self, diamond_fn):
        lv = compute_liveness(diamond_fn)
        for label, block in diamond_fn.blocks.items():
            expected = frozenset().union(
                *(lv.live_in[s] for s in block.succ_labels)
            ) if block.succ_labels else frozenset()
            assert lv.live_out[label] == expected

    def test_params_live_at_entry_when_used(self, loop_fn):
        lv = compute_liveness(loop_fn)
        assert "n" in lv.live_in[loop_fn.start_label]

    def test_live_through_blocks(self, loop_fn):
        lv = compute_liveness(loop_fn)
        through = lv.live_through_blocks(["body"])
        assert {"i", "s", "n", "one"} <= set(through)
