"""Tests for the preference-aware optimistic coloring engine."""

import pytest

from repro.graph.coloring import (
    NoColorForRequiredNode,
    color_graph,
    verify_coloring,
)
from repro.graph.interference import InterferenceGraph

REGS = ["R0", "R1", "R2", "R3"]


def clique(names):
    g = InterferenceGraph()
    g.add_clique(names)
    return g


class TestBasicColoring:
    def test_triangle_three_colors(self):
        g = clique(["a", "b", "c"])
        result = color_graph(g, k=3, color_order=REGS[:3])
        assert not result.spilled
        assert len({result.assignment[v] for v in "abc"}) == 3
        assert not verify_coloring(g, result.assignment)

    def test_bipartite_two_colors(self):
        g = InterferenceGraph()
        for a in ("x", "y"):
            for b in ("u", "v"):
                g.add_edge(a, b)
        result = color_graph(g, k=2, color_order=REGS[:2])
        assert not result.spilled
        assert result.assignment["x"] == result.assignment["y"]
        assert result.assignment["u"] == result.assignment["v"]

    def test_isolated_nodes_share(self):
        g = InterferenceGraph()
        g.add_node("a")
        g.add_node("b")
        result = color_graph(g, k=4, color_order=REGS)
        assert result.assignment["a"] == result.assignment["b"]
        assert len(result.used_colors) == 1

    def test_spill_when_overcommitted(self):
        g = clique(["a", "b", "c", "d"])
        result = color_graph(g, k=2, color_order=REGS[:2])
        assert len(result.spilled) == 2
        assert not verify_coloring(g, result.assignment)

    def test_priorities_protect_valuable_nodes(self):
        g = clique(["hot", "warm", "cold"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            priorities={"hot": 100.0, "warm": 10.0, "cold": 1.0},
        )
        assert result.spilled == {"cold"}

    def test_optimistic_beats_pessimistic(self):
        """Two high-degree nodes that never conflict: the optimistic pass
        colors the diamond the pessimistic pass spills (Briggs' classic)."""
        g = InterferenceGraph()
        # diamond: a-b, a-c, d-b, d-c; a,d nonadjacent; k=2
        for x, y in [("a", "b"), ("a", "c"), ("d", "b"), ("d", "c")]:
            g.add_edge(x, y)
        optimistic = color_graph(g, k=2, color_order=REGS[:2])
        assert not optimistic.spilled

    def test_pessimistic_flag(self):
        g = clique(["a", "b", "c"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], pessimistic=True,
            priorities={"a": 3, "b": 2, "c": 1},
        )
        assert result.spilled == {"c"}


class TestPrecoloring:
    def test_precolored_respected(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], precolored={"a": "R1"}
        )
        assert result.assignment["a"] == "R1"
        assert result.assignment["b"] != "R1"

    def test_precolored_counts_toward_budget(self):
        g = InterferenceGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        result = color_graph(
            g, k=2, color_order=["p0", "p1"], precolored={"a": "R9"}
        )
        assert result.assignment["a"] == "R9"
        assert len(result.used_colors) <= 2


class TestPreferences:
    def test_local_pref_granted(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], local_prefs={"b": "R1"}
        )
        assert result.assignment["b"] == "R1"

    def test_local_pref_denied_on_conflict(self):
        g = clique(["a", "b"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            precolored={"a": "R1"},
            local_prefs={"b": "R1"},
        )
        assert result.assignment["b"] != "R1"

    def test_pref_pairs_share_color(self):
        g = InterferenceGraph()
        g.add_edge("a", "x")
        g.add_edge("b", "x")
        g.add_node("a")
        g.add_node("b")
        result = color_graph(
            g, k=3, color_order=REGS[:3], pref_pairs=[("a", "b")]
        )
        assert result.assignment["a"] == result.assignment["b"]

    def test_conflicting_pair_not_shared(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], pref_pairs=[("a", "b")]
        )
        assert result.assignment["a"] != result.assignment["b"]

    def test_neighbour_pref_avoided(self):
        """A node avoids colors that are local preferences of uncolored
        conflicting variables."""
        g = InterferenceGraph()
        g.add_edge("v", "w")
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            local_prefs={"w": "R0"},
            priorities={"v": 1.0, "w": 10.0},
        )
        assert result.assignment["w"] == "R0"
        assert result.assignment["v"] == "R1"


class TestBoundary:
    def test_boundary_nodes_prefer_distinct_colors(self):
        g = InterferenceGraph()
        g.add_node("g1")
        g.add_node("g2")  # no conflict: ordinarily they would share
        result = color_graph(
            g, k=4, color_order=REGS, boundary={"g1", "g2"}
        )
        assert result.assignment["g1"] != result.assignment["g2"]

    def test_boundary_respects_budget(self):
        g = InterferenceGraph()
        for name in ("g1", "g2", "g3"):
            g.add_node(name)
        result = color_graph(
            g, k=2, color_order=REGS[:2], boundary={"g1", "g2", "g3"}
        )
        assert not result.spilled
        assert len(result.used_colors) <= 2


class TestNeverSpill:
    def test_never_spill_survives(self):
        g = clique(["t", "a", "b"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            never_spill={"t"},
            priorities={"a": 5.0, "b": 4.0},
        )
        assert "t" in result.assignment
        assert "t" not in result.spilled

    def test_never_spill_failure_raises(self):
        g = clique(["t1", "t2", "t3"])
        with pytest.raises(NoColorForRequiredNode) as info:
            color_graph(
                g, k=2, color_order=REGS[:2],
                never_spill={"t1", "t2", "t3"},
            )
        assert info.value.node in {"t1", "t2", "t3"}
