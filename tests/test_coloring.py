"""Tests for the preference-aware optimistic coloring engine."""

import pytest

from repro.graph.coloring import (
    ColoringInvariantError,
    NoColorForRequiredNode,
    color_graph,
    verify_coloring,
)
from repro.graph.interference import InterferenceGraph

REGS = ["R0", "R1", "R2", "R3"]


def clique(names):
    g = InterferenceGraph()
    g.add_clique(names)
    return g


class TestBasicColoring:
    def test_triangle_three_colors(self):
        g = clique(["a", "b", "c"])
        result = color_graph(g, k=3, color_order=REGS[:3])
        assert not result.spilled
        assert len({result.assignment[v] for v in "abc"}) == 3
        assert not verify_coloring(g, result.assignment)

    def test_bipartite_two_colors(self):
        g = InterferenceGraph()
        for a in ("x", "y"):
            for b in ("u", "v"):
                g.add_edge(a, b)
        result = color_graph(g, k=2, color_order=REGS[:2])
        assert not result.spilled
        assert result.assignment["x"] == result.assignment["y"]
        assert result.assignment["u"] == result.assignment["v"]

    def test_isolated_nodes_share(self):
        g = InterferenceGraph()
        g.add_node("a")
        g.add_node("b")
        result = color_graph(g, k=4, color_order=REGS)
        assert result.assignment["a"] == result.assignment["b"]
        assert len(result.used_colors) == 1

    def test_spill_when_overcommitted(self):
        g = clique(["a", "b", "c", "d"])
        result = color_graph(g, k=2, color_order=REGS[:2])
        assert len(result.spilled) == 2
        assert not verify_coloring(g, result.assignment)

    def test_priorities_protect_valuable_nodes(self):
        g = clique(["hot", "warm", "cold"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            priorities={"hot": 100.0, "warm": 10.0, "cold": 1.0},
        )
        assert result.spilled == {"cold"}

    def test_optimistic_beats_pessimistic(self):
        """Two high-degree nodes that never conflict: the optimistic pass
        colors the diamond the pessimistic pass spills (Briggs' classic)."""
        g = InterferenceGraph()
        # diamond: a-b, a-c, d-b, d-c; a,d nonadjacent; k=2
        for x, y in [("a", "b"), ("a", "c"), ("d", "b"), ("d", "c")]:
            g.add_edge(x, y)
        optimistic = color_graph(g, k=2, color_order=REGS[:2])
        assert not optimistic.spilled

    def test_pessimistic_flag(self):
        g = clique(["a", "b", "c"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], pessimistic=True,
            priorities={"a": 3, "b": 2, "c": 1},
        )
        assert result.spilled == {"c"}


class TestPrecoloring:
    def test_precolored_respected(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], precolored={"a": "R1"}
        )
        assert result.assignment["a"] == "R1"
        assert result.assignment["b"] != "R1"

    def test_precolored_counts_toward_budget(self):
        g = InterferenceGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        result = color_graph(
            g, k=2, color_order=["p0", "p1"], precolored={"a": "R9"}
        )
        assert result.assignment["a"] == "R9"
        assert len(result.used_colors) <= 2


class TestPreferences:
    def test_local_pref_granted(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], local_prefs={"b": "R1"}
        )
        assert result.assignment["b"] == "R1"

    def test_local_pref_denied_on_conflict(self):
        g = clique(["a", "b"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            precolored={"a": "R1"},
            local_prefs={"b": "R1"},
        )
        assert result.assignment["b"] != "R1"

    def test_pref_pairs_share_color(self):
        g = InterferenceGraph()
        g.add_edge("a", "x")
        g.add_edge("b", "x")
        g.add_node("a")
        g.add_node("b")
        result = color_graph(
            g, k=3, color_order=REGS[:3], pref_pairs=[("a", "b")]
        )
        assert result.assignment["a"] == result.assignment["b"]

    def test_conflicting_pair_not_shared(self):
        g = clique(["a", "b"])
        result = color_graph(
            g, k=2, color_order=REGS[:2], pref_pairs=[("a", "b")]
        )
        assert result.assignment["a"] != result.assignment["b"]

    def test_neighbour_pref_avoided(self):
        """A node avoids colors that are local preferences of uncolored
        conflicting variables."""
        g = InterferenceGraph()
        g.add_edge("v", "w")
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            local_prefs={"w": "R0"},
            priorities={"v": 1.0, "w": 10.0},
        )
        assert result.assignment["w"] == "R0"
        assert result.assignment["v"] == "R1"


class TestBoundary:
    def test_boundary_nodes_prefer_distinct_colors(self):
        g = InterferenceGraph()
        g.add_node("g1")
        g.add_node("g2")  # no conflict: ordinarily they would share
        result = color_graph(
            g, k=4, color_order=REGS, boundary={"g1", "g2"}
        )
        assert result.assignment["g1"] != result.assignment["g2"]

    def test_boundary_respects_budget(self):
        g = InterferenceGraph()
        for name in ("g1", "g2", "g3"):
            g.add_node(name)
        result = color_graph(
            g, k=2, color_order=REGS[:2], boundary={"g1", "g2", "g3"}
        )
        assert not result.spilled
        assert len(result.used_colors) <= 2


class TestNeverSpill:
    def test_never_spill_survives(self):
        g = clique(["t", "a", "b"])
        result = color_graph(
            g,
            k=2,
            color_order=REGS[:2],
            never_spill={"t"},
            priorities={"a": 5.0, "b": 4.0},
        )
        assert "t" in result.assignment
        assert "t" not in result.spilled

    def test_never_spill_failure_raises(self):
        g = clique(["t1", "t2", "t3"])
        with pytest.raises(NoColorForRequiredNode) as info:
            color_graph(
                g, k=2, color_order=REGS[:2],
                never_spill={"t1", "t2", "t3"},
            )
        assert info.value.node in {"t1", "t2", "t3"}


class TestSpillHeapInvariantGuard:
    """When the spill heap runs dry with uncolored nodes remaining (a
    broken degree/neighbour cache -- impossible with legal inputs, since
    every decrement pushes a fresh entry), the engine raises the
    classified :class:`ColoringInvariantError` instead of a bare
    ``IndexError``."""

    def test_exhausted_spill_heap_raises_classified_error(self, monkeypatch):
        import heapq

        real_heappush = heapq.heappush

        def dropping_heappush(heap, item):
            # Spill entries are (metric, rank, degree) 3-tuples; dropping
            # them starves the spill heap of the fresh entries every
            # degree decrement is supposed to push, so the surviving
            # entries all go stale and the heap runs dry.
            if len(item) == 3:
                return None
            return real_heappush(heap, item)

        monkeypatch.setattr(heapq, "heappush", dropping_heappush)
        g = clique(["a", "b", "c", "d"])
        with pytest.raises(ColoringInvariantError) as excinfo:
            color_graph(g, k=2, color_order=REGS[:2])
        assert "spill heap exhausted" in str(excinfo.value)

    def test_error_is_classified_permanent_internal(self):
        from repro.errors import PERMANENT, classify_exception

        error_class, permanence = classify_exception(
            ColoringInvariantError("spill heap exhausted")
        )
        assert error_class == "coloring_invariant"
        assert permanence == PERMANENT


# ----------------------------------------------------------------------
# Differential: dense-array engine vs the frozen dict-based oracle
# ----------------------------------------------------------------------
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests._coloring_oracle import oracle_color_graph

DIFF_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_coloring_scenario(seed):
    """One random (graph, kwargs) coloring problem.

    Exercises every input the engine takes: priorities, precolored nodes
    (including extras absent from the graph), local preferences,
    preference pairs, never-spill and boundary sets, both optimism modes,
    all three spill heuristics, and -- half the time -- a tile-restricted
    subgraph so node ids are non-dense, exactly as recolor rounds see
    them.
    """
    rng = random.Random(seed)
    n = rng.randint(2, 16)
    # Mixed name shapes so rank order differs from insertion order.
    names = [rng.choice(["v", "a", "t", "x"]) + str(i) for i in range(n)]
    g = InterferenceGraph()
    for name in names:
        g.add_node(name)
    p = rng.uniform(0.1, 0.7)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(names[i], names[j])
    if rng.random() < 0.5 and n > 3:
        keep = {name for name in names if rng.random() < 0.7}
        if len(keep) >= 2:
            g = g.subgraph(keep)
            names = sorted(keep)

    k = rng.randint(2, 4)
    colors = [f"R{i}" for i in range(6)]
    kwargs = dict(
        k=k,
        color_order=colors,
        priorities={
            v: round(rng.uniform(0.0, 20.0), 3)
            for v in names
            if rng.random() < 0.8
        },
        pessimistic=rng.random() < 0.3,
        spill_heuristic=rng.choice(["cost_over_degree", "cost", "degree"]),
    )
    if rng.random() < 0.5:
        pre = {}
        for v in rng.sample(names, min(2, len(names))):
            pre[v] = rng.choice(colors[:k])
        if rng.random() < 0.5:
            pre[f"extern{rng.randint(0, 3)}"] = rng.choice(colors[:k])
        kwargs["precolored"] = pre
    if rng.random() < 0.5:
        kwargs["local_prefs"] = {
            v: rng.choice(colors[:k])
            for v in names
            if rng.random() < 0.3
        }
    if rng.random() < 0.5:
        pairs = []
        pool = names + [f"extern{i}" for i in range(2)]
        for _ in range(rng.randint(1, 4)):
            pairs.append((rng.choice(pool), rng.choice(pool)))
        kwargs["pref_pairs"] = pairs
    if rng.random() < 0.4:
        kwargs["never_spill"] = {
            v for v in names if rng.random() < 0.15
        }
    if rng.random() < 0.4:
        kwargs["boundary"] = {v for v in names if rng.random() < 0.25}
    return g, kwargs


def _run_engine(fn, g, kwargs):
    """(result-or-None, raised NoColorForRequiredNode node-or-None)."""
    try:
        return fn(g, **kwargs), None
    except NoColorForRequiredNode as exc:
        return None, exc.node


class TestDenseEngineMatchesOracle:
    """The dense-array select loop must be bit-identical to the frozen
    dict-based implementation on every field of the result."""

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @DIFF_SETTINGS
    def test_differential(self, seed):
        g, kwargs = _random_coloring_scenario(seed)
        new, new_raised = _run_engine(color_graph, g, kwargs)
        old, old_raised = _run_engine(oracle_color_graph, g, kwargs)
        assert new_raised == old_raised
        if new is None:
            assert old is None
            return
        assert new.assignment == old.assignment
        assert new.spilled == old.spilled
        assert new.used_colors == old.used_colors
        assert new.stack_order == old.stack_order

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @DIFF_SETTINGS
    def test_differential_on_subgraph_of_subgraph(self, seed):
        """Recolor rounds color subgraphs of subgraphs: ids stay sparse
        through two restrictions and rank memos transfer."""
        rng = random.Random(seed ^ 0x5A5A)
        g, kwargs = _random_coloring_scenario(seed)
        nodes = g.nodes()
        if len(nodes) < 4:
            return
        keep = set(rng.sample(nodes, len(nodes) - 2))
        sub = g.subgraph(keep)
        new, new_raised = _run_engine(color_graph, sub, kwargs)
        old, old_raised = _run_engine(oracle_color_graph, sub, kwargs)
        assert new_raised == old_raised
        if new is None:
            assert old is None
            return
        assert new.assignment == old.assignment
        assert new.spilled == old.spilled
        assert new.used_colors == old.used_colors
        assert new.stack_order == old.stack_order
