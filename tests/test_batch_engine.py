"""Tests for the batch allocation engine (multi-function driver).

Pooled, inline and cached paths must produce bit-identical records in
submission order; duplicates are computed once; results match the
single-function pipeline; the trace stream records cache traffic and
per-worker task rows; the CLI ``batch`` subcommand wires it all up.
"""

import json

import pytest

from repro.batch import (
    BatchConfig,
    BatchEngine,
    load_module_dir,
    synthetic_module,
)
from repro.cli import main as cli_main
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.schedule import (
    PARALLEL_AUTO_MIN_TILES,
    effective_min_tiles,
    should_parallelize,
)
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.pipeline import Workload, allocate_module, compile_function
from repro.trace import (
    AllocationTracer,
    BatchTask,
    CacheHit,
    CacheMiss,
    ChromeTraceSink,
    MemorySink,
)
from repro.workloads.kernels import all_kernel_workloads, dot


def small_module(count=6):
    return synthetic_module(count)


class TestEngineBasics:
    def test_results_in_submission_order(self):
        module = small_module()
        with BatchEngine(batch=BatchConfig()) as engine:
            results = engine.allocate_module(module)
        assert [r.name for r in results] == [w.label() for w in module]
        assert all(not r.cached and r.source == "computed" for r in results)

    def test_warm_pass_served_from_cache(self):
        module = small_module()
        with BatchEngine(batch=BatchConfig()) as engine:
            cold = engine.allocate_module(module)
            warm = engine.allocate_module(module)
        assert all(r.cached and r.worker == "cache" for r in warm)
        assert [r.record for r in cold] == [r.record for r in warm]

    def test_pooled_equals_inline(self):
        module = small_module()
        with BatchEngine(batch=BatchConfig()) as inline_engine:
            inline = inline_engine.allocate_module(module)
        with BatchEngine(batch=BatchConfig(batch_workers=2)) as pooled_engine:
            pooled = pooled_engine.allocate_module(module)
        assert [r.record for r in inline] == [r.record for r in pooled]
        assert all(r.worker.startswith("worker-") for r in pooled)

    def test_duplicate_functions_computed_once(self):
        base = dot()
        module = [
            Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4}, name="a"),
            Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4}, name="b"),
        ]
        with BatchEngine(batch=BatchConfig()) as engine:
            results = engine.allocate_module(module)
        assert engine.stats.computed == 1
        assert engine.stats.functions == 2
        assert results[0].record == results[1].record
        assert [r.name for r in results] == ["a", "b"]

    def test_warm_cache_distinguishes_inputs(self):
        # Regression: the cache key must cover simulator inputs -- a warm
        # run with different inputs used to return the previous inputs'
        # dynamic costs/return value without re-simulating.
        base = dot()
        small = [Workload(base, {"n": 2}, {"A": [1] * 4, "B": [2] * 4},
                          name="dot")]
        large = [Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4},
                          name="dot")]
        with BatchEngine(batch=BatchConfig()) as engine:
            first = engine.allocate_module(small)
            second = engine.allocate_module(large)
        assert engine.stats.computed == 2
        assert not second[0].cached
        assert first[0].record.returned == [2 * 2]
        assert second[0].record.returned == [4 * 2]
        assert first[0].record.costs != second[0].record.costs
        # Static fields are input-independent: same function, same text.
        assert (first[0].record.allocated_text
                == second[0].record.allocated_text)
        assert first[0].record.spilled == second[0].record.spilled

    def test_dedup_distinguishes_inputs_within_module(self):
        # Regression: miss dedup used to group by function alone and hand
        # every duplicate the FIRST workload's simulated result.
        base = dot()
        module = [
            Workload(base, {"n": 2}, {"A": [1] * 4, "B": [2] * 4}, name="a"),
            Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4}, name="b"),
            Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4}, name="c"),
        ]
        with BatchEngine(batch=BatchConfig(cache_policy="off")) as engine:
            results = engine.allocate_module(module)
        assert engine.stats.computed == 2
        assert results[0].record.returned == [2 * 2]
        assert results[1].record.returned == [4 * 2]
        assert results[1].record == results[2].record

    def test_inputs_ignored_when_simulation_off(self):
        # Without simulation the record is input-independent, so differing
        # inputs still share one cache slot (and one computation).
        base = dot()
        module = [
            Workload(base, {"n": 2}, {"A": [1] * 4, "B": [2] * 4}, name="a"),
            Workload(base, {"n": 4}, {"A": [1] * 4, "B": [2] * 4}, name="b"),
        ]
        with BatchEngine(batch=BatchConfig(simulate=False)) as engine:
            results = engine.allocate_module(module)
        assert engine.stats.computed == 1
        assert results[0].record == results[1].record
        assert results[0].record.costs is None

    def test_stats_accumulate_across_modules(self):
        module = small_module()
        with BatchEngine(batch=BatchConfig()) as engine:
            engine.allocate_module(module)
            engine.allocate_module(module)
            stats = engine.stats
        assert stats.functions == 2 * len(module)
        assert stats.computed == len(module)
        assert stats.cache_hits == len(module)
        assert stats.cache_misses == len(module)
        assert stats.wall_s > 0
        assert stats.functions_per_sec > 0
        payload = stats.as_dict()
        assert payload["hits"] == len(module)

    def test_cache_off_policy_recomputes(self):
        module = small_module(3)
        with BatchEngine(
            batch=BatchConfig(cache_policy="off")
        ) as engine:
            first = engine.allocate_module(module)
            second = engine.allocate_module(module)
        assert engine.cache is None
        assert engine.stats.computed == 2 * len(module)
        assert [r.record for r in first] == [r.record for r in second]

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        module = small_module(4)
        batch = BatchConfig(cache_policy="disk", cache_dir=str(tmp_path))
        with BatchEngine(batch=batch) as engine:
            cold = engine.allocate_module(module)
        with BatchEngine(batch=batch) as fresh:
            warm = fresh.allocate_module(module)
        assert all(r.cached and r.source == "disk" for r in warm)
        assert fresh.stats.disk_hits == len(module)
        assert [r.record for r in cold] == [r.record for r in warm]


class TestMatchesSingleFunctionPipeline:
    def test_records_match_compile_function(self):
        machine = Machine.simple(8)
        module = all_kernel_workloads(5)[:4]
        results = allocate_module(module, machine=machine)
        for workload, result in zip(module, results):
            direct = compile_function(
                workload, HierarchicalAllocator(), machine
            )
            assert result.record.allocated_text == format_function(direct.fn)
            assert set(result.record.spilled) == direct.stats.spilled_vars
            assert result.record.costs == {
                "spill_loads": direct.allocated_run.spill_loads,
                "spill_stores": direct.allocated_run.spill_stores,
                "moves": direct.allocated_run.register_moves,
                "program_refs": direct.allocated_run.program_memory_refs,
            }

    def test_static_path_when_no_inputs(self):
        module = [Workload(dot(), name="bare")]
        results = allocate_module(module)
        record = results.results[0].record
        assert record.costs is None and record.returned is None
        assert record.allocated_text
        assert record.bindings


class TestSyntheticModule:
    def test_deterministic_across_calls(self):
        first = synthetic_module(10)
        second = synthetic_module(10)
        assert [w.label() for w in first] == [w.label() for w in second]
        assert [format_function(w.fn) for w in first] == [
            format_function(w.fn) for w in second
        ]

    def test_distinct_functions(self):
        module = synthetic_module(10)
        texts = {format_function(w.fn) for w in module}
        assert len(texts) == len(module)


class TestTraceIntegration:
    def test_cache_events_and_task_rows(self):
        module = small_module(3)
        sink = MemorySink()
        tracer = AllocationTracer([sink])
        with BatchEngine(batch=BatchConfig(), tracer=tracer) as engine:
            engine.allocate_module(module)
            engine.allocate_module(module)
        misses = sink.of_type(CacheMiss)
        hits = sink.of_type(CacheHit)
        tasks = sink.of_type(BatchTask)
        assert [e.function for e in misses] == [w.label() for w in module]
        assert [e.function for e in hits] == [w.label() for w in module]
        assert sum(1 for t in tasks if not t.cached) == len(module)
        assert sum(1 for t in tasks if t.cached) == len(module)
        assert all(t.start >= 0 and t.duration >= 0 for t in tasks)

    def test_chrome_rows_per_worker(self, tmp_path):
        path = tmp_path / "batch.json"
        tracer = AllocationTracer([ChromeTraceSink(str(path))])
        module = small_module(4)
        with BatchEngine(
            batch=BatchConfig(batch_workers=2), tracer=tracer
        ) as engine:
            engine.allocate_module(module)
        tracer.close()
        doc = json.loads(path.read_text())
        batch_events = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "batch"
        ]
        assert len(batch_events) == len(module)
        rows = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        workers = {rows[e["tid"]] for e in batch_events}
        assert workers <= {"worker-0", "worker-1"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in batch_events)
        assert all(
            e["args"]["cached"] is False and e["args"]["fingerprint"]
            for e in batch_events
        )


class TestCLI:
    @pytest.fixture
    def module_dir(self, tmp_path):
        for workload in all_kernel_workloads(4)[:3]:
            name = workload.label()
            (tmp_path / f"{name}.ir").write_text(
                format_function(workload.fn)
            )
        return str(tmp_path)

    def run(self, argv):
        import io

        out = io.StringIO()
        code = cli_main(argv, out=out)
        return code, out.getvalue()

    def test_batch_static(self, module_dir):
        code, text = self.run([
            "batch", module_dir, "--no-simulate", "--stats",
        ])
        assert code == 0
        assert "functions:" in text and "misses:" in text

    def test_batch_with_cache_dir(self, module_dir, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code1, _ = self.run([
            "batch", module_dir, "--no-simulate", "--cache", cache_dir,
        ])
        code2, text = self.run([
            "batch", module_dir, "--no-simulate", "--cache", cache_dir,
            "--stats",
        ])
        assert code1 == 0 and code2 == 0
        assert "disk" in text

    def test_load_module_dir_rejects_empty(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module_dir(str(tmp_path))


class TestParallelFallback:
    """Satellite: ``parallel=True`` auto-falls back to the sequential
    driver below the tile-count threshold (thread scheduling cannot pay
    for itself there under the GIL)."""

    def test_threshold_default(self):
        config = HierarchicalConfig(parallel=True, parallel_workers=4)
        assert effective_min_tiles(config) == max(
            8, PARALLEL_AUTO_MIN_TILES
        )
        assert not should_parallelize(config, 100)
        assert should_parallelize(config, PARALLEL_AUTO_MIN_TILES)

    def test_threshold_override(self):
        config = HierarchicalConfig(
            parallel=True, parallel_workers=4, parallel_min_tiles=1
        )
        assert effective_min_tiles(config) == 1
        assert should_parallelize(config, 1)

    def test_disabled_without_parallel(self):
        assert not should_parallelize(HierarchicalConfig(), 10_000)

    def test_driver_recorded_in_stats(self):
        machine = Machine.simple(4)
        fn = dot()
        from repro.pipeline import prepare

        fallback = HierarchicalAllocator(
            HierarchicalConfig(parallel=True, parallel_workers=2)
        ).allocate(prepare(fn.clone()), machine)
        assert fallback.stats.extra["driver"] == "sequential"

        forced = HierarchicalAllocator(
            HierarchicalConfig(
                parallel=True, parallel_workers=2, parallel_min_tiles=1
            )
        ).allocate(prepare(fn.clone()), machine)
        assert forced.stats.extra["driver"] == "dep_parallel"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalConfig(parallel_min_tiles=0)


class TestBatchConfigValidation:
    def test_disk_policy_requires_dir(self):
        with pytest.raises(ValueError):
            BatchConfig(cache_policy="disk")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchConfig(cache_policy="magnetic-tape")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchConfig(batch_workers=-1)


class TestClockDiscipline:
    """Interval math must survive wall-clock steps (NTP, DST, manual
    set): durations and ``BatchStats.wall_s`` come from
    ``time.monotonic()``; ``time.time()`` is only ever a trace
    *timestamp*."""

    def test_backwards_wall_clock_step_cannot_negate_intervals(
        self, monkeypatch
    ):
        import time as _time

        real_time = _time.time
        # Every wall-clock read jumps 1000s *backwards* -- with
        # time.time()-based interval math this drives every duration
        # (and wall_s) negative.
        state = {"offset": 0.0}

        def stepping_time():
            state["offset"] -= 1000.0
            return real_time() + state["offset"]

        monkeypatch.setattr(_time, "time", stepping_time)

        module = synthetic_module(4)
        with BatchEngine(batch=BatchConfig(cache_policy="off")) as engine:
            allocation = engine.allocate_module(module)

        assert len(allocation) == 4
        assert allocation.ok
        assert engine.stats.wall_s >= 0.0
        for result in allocation:
            assert result.duration >= 0.0
        assert engine.stats.functions_per_sec >= 0.0

    def test_trace_task_rows_still_use_wall_stamps(self, monkeypatch):
        """Trace rows deliberately keep wall-clock ``start`` stamps (they
        are offset against the engine's wall-clock epoch and must be
        comparable across processes)."""
        import time as _time

        real_time = _time.time
        state = {"offset": 0.0}

        def stepping_time():
            state["offset"] -= 1000.0
            return real_time() + state["offset"]

        monkeypatch.setattr(_time, "time", stepping_time)

        sink = MemorySink()
        tracer = AllocationTracer([sink])
        module = synthetic_module(2)
        with BatchEngine(
            batch=BatchConfig(cache_policy="off"), tracer=tracer
        ) as engine:
            engine.allocate_module(module)

        rows = sink.of_type(BatchTask)
        assert len(rows) == 2
        for row in rows:
            # duration is monotonic-derived, never negative, even while
            # the wall clock (which feeds ``start``) is stepping wildly.
            assert row.duration >= 0.0
        assert engine.stats.wall_s >= 0.0
