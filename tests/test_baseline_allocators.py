"""End-to-end tests for the baseline allocators."""

import pytest

from repro.allocators import (
    BriggsAllocator,
    ChaitinAllocator,
    LocalAllocator,
    NaiveMemoryAllocator,
)
from repro.ir.instructions import Opcode, is_phys
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import all_kernel_workloads, dot

ALLOCATORS = [
    ChaitinAllocator,
    BriggsAllocator,
    NaiveMemoryAllocator,
    LocalAllocator,
]


@pytest.fixture
def dot_workload():
    return Workload(
        dot(), args={"n": 6},
        arrays={"A": [1, 2, 3, 4, 5, 6], "B": [6, 5, 4, 3, 2, 1]},
        name="dot",
    )


class TestCorrectness:
    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    @pytest.mark.parametrize("registers", [2, 3, 4, 8])
    def test_dot_all_registers(self, dot_workload, allocator_cls, registers):
        result = compile_function(
            dot_workload, allocator_cls(), Machine.simple(registers)
        )
        assert result.allocated_run.returned == (56,)

    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    def test_all_kernels(self, allocator_cls):
        for workload in all_kernel_workloads(6):
            result = compile_function(
                workload, allocator_cls(), Machine.simple(4)
            )
            assert result.reference_run.returned == result.allocated_run.returned

    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    def test_output_is_physical(self, dot_workload, allocator_cls):
        result = compile_function(dot_workload, allocator_cls(), Machine.simple(4))
        for block in result.fn.blocks.values():
            for instr in block.instrs:
                for var in instr.defs + instr.uses:
                    assert is_phys(var)


class TestChaitinBehaviour:
    def test_no_spills_with_plenty_of_registers(self, dot_workload):
        result = compile_function(
            dot_workload, ChaitinAllocator(), Machine.simple(16)
        )
        assert result.spill_refs == 0
        assert result.stats.iterations == 1

    def test_iterates_under_pressure(self, dot_workload):
        result = compile_function(
            dot_workload, ChaitinAllocator(), Machine.simple(2)
        )
        assert result.stats.iterations > 1
        assert result.stats.spilled_vars

    def test_spill_everywhere(self, dot_workload):
        """A spilled variable pays at every reference, including in-loop."""
        result = compile_function(
            dot_workload, ChaitinAllocator(), Machine.simple(3)
        )
        spill_blocks = result.stats.spill_block_labels
        assert "body" in spill_blocks or "head" in spill_blocks

    def test_briggs_never_worse_here(self, dot_workload):
        for registers in (2, 3, 4):
            machine = Machine.simple(registers)
            chaitin = compile_function(dot_workload, ChaitinAllocator(), machine)
            briggs = compile_function(dot_workload, BriggsAllocator(), machine)
            assert briggs.spill_refs <= chaitin.spill_refs

    def test_reuse_within_block_helps(self, dot_workload):
        """At moderate pressure the classic within-block cleanup saves
        reloads.  (At extreme pressure it can backfire -- reuse lengthens
        temp live ranges -- so the comparison is made at R=4.)"""
        machine = Machine.simple(4)
        with_reuse = compile_function(
            dot_workload, ChaitinAllocator(reuse_within_block=True), machine
        )
        without = compile_function(
            dot_workload, ChaitinAllocator(reuse_within_block=False), machine
        )
        assert with_reuse.spill_refs <= without.spill_refs


class TestAnchors:
    def test_ordering_naive_worst(self, dot_workload):
        """naive >= local >= briggs on spill traffic."""
        machine = Machine.simple(4)
        naive = compile_function(dot_workload, NaiveMemoryAllocator(), machine)
        local = compile_function(dot_workload, LocalAllocator(), machine)
        briggs = compile_function(dot_workload, BriggsAllocator(), machine)
        assert naive.spill_refs >= local.spill_refs >= briggs.spill_refs

    def test_naive_touches_memory_everywhere(self, dot_workload):
        result = compile_function(
            dot_workload, NaiveMemoryAllocator(), Machine.simple(4)
        )
        for label, block in result.fn.blocks.items():
            ops = [i.op for i in block.instrs]
            if any(o not in (Opcode.BR, Opcode.CBR, Opcode.NOP,
                             Opcode.SPILL_LD, Opcode.SPILL_ST, Opcode.RET)
                   for o in ops):
                assert Opcode.SPILL_LD in ops or Opcode.SPILL_ST in ops

    def test_naive_requires_two_registers(self, dot_workload):
        with pytest.raises(ValueError):
            NaiveMemoryAllocator().allocate(dot_workload.fn, Machine.simple(1))

    def test_local_flushes_only_live_out(self, dot_workload):
        result = compile_function(
            dot_workload, LocalAllocator(), Machine.simple(8)
        )
        assert result.allocated_run.returned == (56,)
