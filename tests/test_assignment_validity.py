"""Point-wise validity of the hierarchical allocator's assignments.

Differential simulation catches most wrong allocations, but two variables
that share a register could in principle hold equal *values* on the tested
inputs.  This suite checks the assignment property directly: at every
instruction point of every tile, simultaneously-live variables bound to
registers at that tile hold *distinct* registers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MEM, HierarchicalConfig
from repro.core.info import build_context
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.machine.target import Machine
from repro.pipeline import prepare
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1
from repro.workloads.generators import random_program
from repro.workloads.kernels import all_kernel_workloads


def bound_phases(fn, registers):
    prepared = prepare(fn.clone())
    build = build_tile_tree_detailed(prepared)
    ctx = build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )
    config = HierarchicalConfig()
    allocations = run_phase1(ctx, config)
    run_phase2(ctx, config, allocations)
    return ctx, allocations


def _copy_classes(fn):
    """Union-find over copy/move pairs: variables in one class may hold the
    same value simultaneously, so the classic copy exemption legitimately
    lets them share a register while both are live."""
    parent = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for _, instr in fn.instructions():
        if instr.is_copy_like and instr.defs and instr.uses:
            ra, rb = find(instr.defs[0]), find(instr.uses[0])
            if ra != rb:
                parent[ra] = rb
    return find


def assert_pointwise_distinct(ctx, allocations):
    """At every instruction, live variables bound to the same register at
    the owning tile's level must be copy-related (value-equal); any other
    sharing is a genuine miscompile."""
    same_value = _copy_classes(ctx.fn)
    for tile in ctx.tree.preorder():
        alloc = allocations[tile.tid]
        for label in tile.own_blocks():
            live_in = ctx.liveness.instr_live_in(label)
            live_out = ctx.liveness.instr_live_out(label)
            for point in list(live_in) + list(live_out):
                regs = {}
                for var in sorted(point):
                    loc = alloc.phys.get(var)
                    if loc is None or loc == MEM:
                        continue
                    clash = regs.get(loc)
                    if clash is not None:
                        assert same_value(var) == same_value(clash), (
                            f"tile #{tile.tid} block {label}: {var} and "
                            f"{clash} both live in {loc} without being "
                            "copy-related"
                        )
                    regs[loc] = var


class TestKernels:
    @pytest.mark.parametrize("registers", [2, 3, 4, 6])
    def test_all_kernels_pointwise_valid(self, registers):
        for workload in all_kernel_workloads(6):
            ctx, allocations = bound_phases(workload.fn, registers)
            assert_pointwise_distinct(ctx, allocations)

    def test_figure1_pointwise_valid(self):
        ctx, allocations = bound_phases(figure1(), 4)
        assert_pointwise_distinct(ctx, allocations)


@given(seed=st.integers(0, 10_000), registers=st.sampled_from([2, 3, 4]))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_pointwise_valid(seed, registers):
    fn = random_program(seed, break_prob=0.2)
    ctx, allocations = bound_phases(fn, registers)
    assert_pointwise_distinct(ctx, allocations)
