"""Tests for the optimization passes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Opcode
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.minilang import compile_source
from repro.opt import (
    constant_fold,
    copy_propagate,
    dead_code_eliminate,
    optimize,
    simplify_cfg,
)
from repro.workloads.generators import random_workload


def ops_of(fn, label):
    return [i.op for i in fn.blocks[label].instrs]


class TestConstantFold:
    def test_folds_arithmetic(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("a", 6)
        b.const("c", 7)
        b.mul("p", "a", "c")
        b.ret("p")
        fn = b.finish()
        out, changed = constant_fold(fn)
        assert changed
        folded = out.blocks["one"].instrs[2]
        assert folded.op is Opcode.CONST and folded.imm == 42

    def test_folds_through_copies(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("a", 5)
        b.copy("bb", "a")
        b.neg("c", "bb")
        b.ret("c")
        fn = b.finish()
        out, _ = constant_fold(fn)
        assert out.blocks["one"].instrs[2].imm == -5

    def test_redefinition_kills(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("a", 5)
        b.copy("a", "p")       # a no longer constant
        b.add("r", "a", "a")
        b.ret("r")
        fn = b.finish()
        out, _ = constant_fold(fn)
        assert out.blocks["one"].instrs[2].op is Opcode.ADD

    def test_folds_branches_and_drops_unreachable(self):
        fn = compile_source(
            "func f() { if (1 < 2) { return 10; } else { return 20; } }"
        )
        out, changed = constant_fold(out_fn := fn)
        # May take a couple of rounds (the comparison folds first).
        out, _ = constant_fold(out)
        validate_function(out)
        assert simulate(out).returned == (10,)
        labels = set(out.blocks)
        assert not any(label.startswith("else") for label in labels)

    def test_semantics_on_kernels(self):
        w = random_workload(3)
        out, _ = constant_fold(w.fn)
        validate_function(out)
        a = simulate(w.fn, args=w.args, arrays=w.arrays)
        b = simulate(out, args=dict(w.args), arrays=w.arrays)
        assert a.returned == b.returned


class TestCopyPropagate:
    def test_propagates(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.copy("q", "p")
        b.add("r", "q", "q")
        b.ret("r")
        fn = b.finish()
        out, changed = copy_propagate(fn)
        assert changed
        assert out.blocks["one"].instrs[1].uses == ("p", "p")

    def test_source_redefinition_kills(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.copy("q", "p")
        b.const("p", 0)        # p changes: q must NOT read the new p
        b.add("r", "q", "p")
        b.ret("r")
        fn = b.finish()
        out, _ = copy_propagate(fn)
        assert out.blocks["one"].instrs[2].uses[0] == "q"

    def test_dest_redefinition_kills(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.copy("q", "p")
        b.const("q", 3)
        b.add("r", "q", "q")
        b.ret("r")
        fn = b.finish()
        out, _ = copy_propagate(fn)
        assert out.blocks["one"].instrs[2].uses == ("q", "q")


class TestDeadCode:
    def test_removes_dead_chain(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("a", 1)
        b.add("bb", "a", "a")   # dead chain: bb feeds cc, cc unused
        b.add("cc", "bb", "bb")
        b.ret("p")
        fn = b.finish()
        out, changed = dead_code_eliminate(fn)
        assert changed
        assert ops_of(out, "one") == [Opcode.RET]

    def test_keeps_stores(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("i", 0)
        b.store("A", "i", "p")
        b.ret("p")
        fn = b.finish()
        out, _ = dead_code_eliminate(fn)
        assert Opcode.STORE in ops_of(out, "one")

    def test_keeps_live_across_blocks(self, loop_fn):
        out, changed = dead_code_eliminate(loop_fn)
        result = simulate(out, args={"n": 4})
        assert result.returned == (10,)


class TestSimplifyCfg:
    def test_merges_chains(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("a", 1)
        b.br("two")
        b.block("two")
        b.add("r", "a", "p")
        b.br("three")
        b.block("three")
        b.ret("r")
        fn = b.finish()
        out, changed = simplify_cfg(fn)
        assert changed
        validate_function(out)
        assert len(out.blocks) < len(fn.blocks)
        assert simulate(out, args={"p": 2}).returned == (3,)

    def test_keeps_diamonds(self, diamond_fn):
        out, _ = simplify_cfg(diamond_fn)
        validate_function(out)
        assert simulate(out, args={"x": 1}).returned == (11,)

    def test_drops_empty_blocks(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.cmplt("c", "p", "p")
        b.cbr("c", "hopA", "hopB")
        b.block("hopA")
        b.br("join")
        b.block("hopB")
        b.br("join")
        b.block("join")
        b.ret("p")
        fn = b.finish()
        out, changed = simplify_cfg(fn)
        assert changed
        validate_function(out)
        assert simulate(out, args={"p": 1}).returned == (1,)


class TestOptimizeDriver:
    def test_minilang_cleanup(self):
        """MiniLang lowering produces many temporaries and copies; the
        optimizer collapses most of them."""
        fn = compile_source(
            "func f(n) { var s = 0; var i = 0; while (i < n) "
            "{ s = s + A[i] * 2; i = i + 1; } return s; }"
        )
        out = optimize(fn)
        validate_function(out)
        assert out.instr_count() < fn.instr_count()
        a = simulate(fn, args={"n": 3}, arrays={"A": [1, 2, 3]})
        b = simulate(out, args={"n": 3}, arrays={"A": [1, 2, 3]})
        assert a.returned == b.returned == (12,)

    def test_fixed_point(self):
        fn = compile_source("func f() { return 1 + 2 + 3; }")
        once = optimize(fn)
        twice = optimize(once)
        assert once.instr_count() == twice.instr_count()

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimize_preserves_semantics(self, seed):
        w = random_workload(seed, break_prob=0.2)
        out = optimize(w.fn)
        validate_function(out)
        a = simulate(w.fn, args=w.args, arrays=w.arrays)
        b = simulate(out, args=dict(w.args), arrays=w.arrays)
        assert a.returned == b.returned
        canon = lambda arrays: {
            name: {i: v for i, v in contents.items() if v != 0}
            for name, contents in arrays.items()
        }
        assert canon(a.arrays) == canon(b.arrays)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimized_programs_still_allocate(self, seed):
        from repro.core import HierarchicalAllocator
        from repro.machine.target import Machine
        from repro.pipeline import Workload, compile_function

        w = random_workload(seed)
        out = optimize(w.fn)
        workload = Workload(out, w.args, w.arrays, name="opt")
        result = compile_function(
            workload, HierarchicalAllocator(), Machine.simple(3)
        )
        assert result.allocated_run.returned == result.reference_run.returned
