"""Round-trip and error tests for the textual IR format."""

import pytest

from repro.ir import format_function, format_instr, parse_function
from repro.ir.instructions import Instr, Opcode
from repro.ir.parser import IRParseError
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.workloads.kernels import cond_sum, dot, matmul
from repro.workloads.generators import random_program


class TestFormatInstr:
    @pytest.mark.parametrize(
        "instr,text",
        [
            (Instr(Opcode.CONST, defs=("x",), imm=3), "x = const 3"),
            (Instr(Opcode.COPY, defs=("x",), uses=("y",)), "x = copy y"),
            (Instr(Opcode.ADD, defs=("x",), uses=("a", "b")), "x = add a, b"),
            (Instr(Opcode.NEG, defs=("x",), uses=("a",)), "x = neg a"),
            (Instr(Opcode.LOAD, defs=("x",), uses=("i",), imm="A"), "x = load A[i]"),
            (Instr(Opcode.STORE, uses=("i", "v"), imm="A"), "store A[i], v"),
            (Instr(Opcode.BR), "br"),
            (Instr(Opcode.CBR, uses=("c",)), "cbr c"),
            (Instr(Opcode.RET, uses=("v",)), "ret v"),
            (Instr(Opcode.RET), "ret"),
            (Instr(Opcode.NOP), "nop"),
            (
                Instr(Opcode.SPILL_ST, uses=("R1",), imm="slot:v"),
                "spillst [slot:v], R1",
            ),
            (
                Instr(Opcode.SPILL_LD, defs=("R1",), imm="slot:v"),
                "R1 = spillld [slot:v]",
            ),
        ],
    )
    def test_formats(self, instr, text):
        assert format_instr(instr) == text


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [dot, cond_sum, matmul])
    def test_kernel_round_trip(self, factory):
        fn = factory()
        text = format_function(fn)
        back = parse_function(text)
        validate_function(back)
        assert format_function(back) == text

    def test_random_round_trip_behaviour(self):
        fn = random_program(3)
        back = parse_function(format_function(fn))
        args = {p: 5 for p in fn.params}
        a = simulate(fn, args=args, arrays={"A": [1, 2, 3, 4, 5, 6, 7, 8]})
        b = simulate(back, args=args, arrays={"A": [1, 2, 3, 4, 5, 6, 7, 8]})
        assert a.returned == b.returned

    def test_dot_executes_after_round_trip(self):
        back = parse_function(format_function(dot()))
        result = simulate(
            back, args={"n": 3}, arrays={"A": [1, 2, 3], "B": [4, 5, 6]}
        )
        assert result.returned == (32,)


class TestParserErrors:
    def test_empty_input(self):
        with pytest.raises(IRParseError):
            parse_function("")

    def test_bad_header(self):
        with pytest.raises(IRParseError):
            parse_function("function f()")

    def test_instruction_outside_block(self):
        text = "func f() start=a stop=b\nx = const 1\n"
        with pytest.raises(IRParseError):
            parse_function(text)

    def test_missing_stop(self):
        text = "func f() start=a stop=b\na:\n  ret\n"
        with pytest.raises(IRParseError):
            parse_function(text)

    def test_unknown_opcode(self):
        text = "func f() start=a stop=b\na:\n  x = warp y\n  -> b\nb:\n"
        with pytest.raises(ValueError):
            parse_function(text)

    def test_comments_ignored(self):
        text = (
            "func f() start=a stop=b\n"
            "# a comment\n"
            "a:\n  x = const 1\n  ret x\n  -> b\nb:\n"
        )
        fn = parse_function(text)
        assert len(fn.blocks["a"].instrs) == 2
