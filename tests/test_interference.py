"""Tests for interference-graph construction."""

from repro.analysis.liveness import compute_liveness
from repro.graph.interference import InterferenceGraph, build_interference
from repro.ir.builder import FunctionBuilder


class TestGraphStructure:
    def test_add_edge_symmetric(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        assert g.interferes("a", "b")
        assert g.interferes("b", "a")
        assert g.degree("a") == 1

    def test_self_edge_ignored(self):
        g = InterferenceGraph()
        g.add_edge("a", "a")
        assert g.degree("a") == 0

    def test_clique(self):
        g = InterferenceGraph()
        g.add_clique(["a", "b", "c"])
        assert g.edge_count() == 3

    def test_remove_node(self):
        g = InterferenceGraph()
        g.add_clique(["a", "b", "c"])
        g.remove_node("b")
        assert "b" not in g
        assert g.degree("a") == 1

    def test_subgraph(self):
        g = InterferenceGraph()
        g.add_clique(["a", "b", "c"])
        sub = g.subgraph({"a", "b"})
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.edge_count() == 1

    def test_merge_from(self):
        g1 = InterferenceGraph()
        g1.add_edge("a", "b")
        g2 = InterferenceGraph()
        g2.add_edge("b", "c")
        g1.merge_from(g2)
        assert g1.edge_count() == 2

    def test_edges_deduplicated(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert list(g.edges()) == [("a", "b")]


class TestConstruction:
    def test_simultaneously_live_conflict(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("x", 1)
        b.const("y", 2)          # x live here -> conflict
        b.add("z", "x", "y")
        b.ret("z")
        fn = b.finish()
        g = build_interference(fn, compute_liveness(fn))
        assert g.interferes("x", "y")
        assert not g.interferes("x", "z")  # x dead once z defined

    def test_copy_exemption(self):
        """copy dst/src do not conflict through the copy itself."""
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.copy("q", "p")
        b.add("r", "q", "p")     # p still live after the copy
        b.ret("r")
        fn = b.finish()
        g = build_interference(fn, compute_liveness(fn))
        assert not g.interferes("q", "p")

    def test_copy_then_redefine_conflicts(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.copy("q", "p")
        b.const("q", 9)          # redefinition while p live
        b.add("r", "q", "p")
        b.ret("r")
        fn = b.finish()
        g = build_interference(fn, compute_liveness(fn))
        assert g.interferes("q", "p")

    def test_loop_carried_conflicts(self, loop_fn):
        g = build_interference(loop_fn, compute_liveness(loop_fn))
        assert g.interferes("i", "s")
        assert g.interferes("i", "n")
        assert g.interferes("s", "one")

    def test_relevant_filter(self, loop_fn):
        g = build_interference(
            loop_fn,
            compute_liveness(loop_fn),
            relevant={"i", "s"},
        )
        assert set(g.nodes()) <= {"i", "s"}
        assert g.interferes("i", "s")

    def test_labels_restriction(self, loop_fn):
        g = build_interference(
            loop_fn, compute_liveness(loop_fn), labels=["entry"]
        )
        # Conflicts discovered only from defs in 'entry'.
        assert g.interferes("i", "s")
        assert "c" not in g  # c is only referenced in head

    def test_dead_def_still_noded(self):
        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.const("dead", 1)       # never used
        b.ret("p")
        fn = b.finish()
        g = build_interference(fn, compute_liveness(fn))
        assert "dead" in g
        assert g.interferes("dead", "p")  # p live across the dead def

    def test_multi_def_instruction_conflict(self):
        from repro.ir.instructions import Instr, Opcode

        b = FunctionBuilder("f", params=["p"])
        b.block("one")
        b.emit(Instr(Opcode.CALL, defs=("a", "b"), uses=("p",), imm="id"))
        b.add("r", "a", "b")
        b.ret("r")
        fn = b.finish()
        g = build_interference(fn, compute_liveness(fn))
        assert g.interferes("a", "b")
