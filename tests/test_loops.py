"""Tests for loop-forest (interval) detection."""

from repro.analysis.loops import build_loop_forest
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode
from repro.workloads.kernels import matmul


class TestSimpleLoops:
    def test_single_loop(self, loop_fn):
        forest = build_loop_forest(loop_fn)
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.header == "head"
        assert loop.blocks == {"head", "body"}
        assert not loop.irreducible
        assert loop.depth == 1

    def test_no_loops(self, diamond_fn):
        forest = build_loop_forest(diamond_fn)
        assert len(forest) == 0
        assert forest.loop_depth("join") == 0

    def test_loop_depth_map(self, loop_fn):
        forest = build_loop_forest(loop_fn)
        assert forest.loop_depth("body") == 1
        assert forest.loop_depth("entry") == 0
        assert forest.innermost_loop("body").header == "head"
        assert forest.innermost_loop("entry") is None


class TestNesting:
    def test_matmul_three_levels(self):
        forest = build_loop_forest(matmul())
        depths = sorted(l.depth for l in forest)
        assert depths == [1, 2, 3]
        inner = max(forest, key=lambda l: l.depth)
        assert inner.header == "kh"
        assert forest.loop_depth("kbody") == 3
        assert forest.loop_depth("jh") == 2

    def test_own_blocks_excludes_children(self):
        forest = build_loop_forest(matmul())
        outer = next(l for l in forest if l.depth == 1)
        middle = next(l for l in forest if l.depth == 2)
        assert middle.blocks < outer.blocks
        assert not (outer.own_blocks() & middle.blocks)

    def test_parent_links(self):
        forest = build_loop_forest(matmul())
        inner = next(l for l in forest if l.depth == 3)
        assert inner.parent.depth == 2
        assert inner in inner.parent.children


class TestSelfLoop:
    def test_self_loop_detected(self):
        fn = Function("f", start_label="s", stop_label="t")
        fn.add_block(BasicBlock("s", [], ["a"]))
        a = BasicBlock("a", [Instr(Opcode.CBR, uses=("c",))], ["a", "t"])
        fn.add_block(a)
        fn.add_block(BasicBlock("t", []))
        forest = build_loop_forest(fn)
        assert len(forest) == 1
        assert forest.loops[0].blocks == {"a"}


class TestIrreducible:
    def _irreducible_fn(self):
        # start -> a -> {b, c}; b <-> c; b -> t  : two-entry cycle {b, c}
        fn = Function("f", start_label="s", stop_label="t")
        fn.add_block(BasicBlock("s", [], ["a"]))
        fn.add_block(
            BasicBlock("a", [Instr(Opcode.CBR, uses=("c",))], ["b", "c"])
        )
        fn.add_block(
            BasicBlock("b", [Instr(Opcode.CBR, uses=("c",))], ["c", "t"])
        )
        fn.add_block(BasicBlock("c", [], ["b"]))
        fn.add_block(BasicBlock("t", []))
        return fn

    def test_detected_as_irreducible(self):
        forest = build_loop_forest(self._irreducible_fn())
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.irreducible
        assert loop.blocks == {"b", "c"}
        assert set(loop.entries) == {"b", "c"}

    def test_reducible_not_flagged(self, loop_fn):
        forest = build_loop_forest(loop_fn)
        assert not forest.loops[0].irreducible


class TestHeaders:
    def test_headers_set(self):
        forest = build_loop_forest(matmul())
        assert forest.headers() == {"ih", "jh", "kh"}
