"""Tests for boundary spill-code planning and move sequencing."""

import pytest

from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.spill_code import (
    EdgePlan,
    plan_boundary_code,
    rewrite_program,
    sequence_moves,
)
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1

REGS = ["R0", "R1", "R2", "R3"]


class TestSequenceMoves:
    def _ops(self, instrs):
        return [(i.op, i.defs, i.uses, i.imm) for i in instrs]

    def test_stores_before_moves_before_loads(self):
        plan = EdgePlan(
            stores=[("slot:a", "R0")],
            moves=[("R1", "R2")],
            loads=[("R3", "slot:b")],
        )
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        ops = [i.op for i in instrs]
        assert ops == [Opcode.SPILL_ST, Opcode.MOVE, Opcode.SPILL_LD]

    def test_chain_ordering(self):
        """R1 <- R0 and R2 <- R1 must move R2 <- R1 first."""
        plan = EdgePlan(moves=[("R1", "R0"), ("R2", "R1")])
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        assert instrs[0].defs == ("R2",)
        assert instrs[1].defs == ("R1",)

    def test_swap_cycle_uses_free_register(self):
        plan = EdgePlan(moves=[("R0", "R1"), ("R1", "R0")], busy={"R0", "R1"})
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        assert all(i.op is Opcode.MOVE for i in instrs)
        assert len(instrs) == 3  # temp save + two moves
        temps = {i.defs[0] for i in instrs} - {"R0", "R1"}
        assert temps  # some scratch register was used

    def test_swap_cycle_without_free_register_bounces(self):
        plan = EdgePlan(moves=[("R0", "R1"), ("R1", "R0")], busy={"R0", "R1"})
        instrs = sequence_moves(plan, ["R0", "R1"], ("x", "y"))
        ops = [i.op for i in instrs]
        assert Opcode.SPILL_ST in ops and Opcode.SPILL_LD in ops

    def test_three_cycle(self):
        plan = EdgePlan(
            moves=[("R0", "R1"), ("R1", "R2"), ("R2", "R0")],
            busy={"R0", "R1", "R2"},
        )
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        # Simulate the move sequence on concrete values.
        env = {"R0": 0, "R1": 1, "R2": 2, "R3": 99}
        slots = {}
        for i in instrs:
            if i.op is Opcode.MOVE:
                env[i.defs[0]] = env[i.uses[0]]
            elif i.op is Opcode.SPILL_ST:
                slots[i.imm] = env[i.uses[0]]
            else:
                env[i.defs[0]] = slots[i.imm]
        assert (env["R0"], env["R1"], env["R2"]) == (1, 2, 0)

    def test_swap_semantics_via_memory(self):
        plan = EdgePlan(moves=[("R0", "R1"), ("R1", "R0")], busy={"R0", "R1"})
        instrs = sequence_moves(plan, ["R0", "R1"], ("x", "y"))
        env = {"R0": 10, "R1": 20}
        slots = {}
        for i in instrs:
            if i.op is Opcode.MOVE:
                env[i.defs[0]] = env[i.uses[0]]
            elif i.op is Opcode.SPILL_ST:
                slots[i.imm] = env[i.uses[0]]
            else:
                env[i.defs[0]] = slots[i.imm]
        assert (env["R0"], env["R1"]) == (20, 10)

    def test_empty_plan(self):
        assert sequence_moves(EdgePlan(), REGS, ("x", "y")) == []

    @staticmethod
    def _exec(instrs, env):
        """Interpret a fix-up sequence on concrete register values."""
        slots = {}
        for i in instrs:
            if i.op is Opcode.MOVE:
                env[i.defs[0]] = env[i.uses[0]]
            elif i.op is Opcode.SPILL_ST:
                slots[i.imm] = env[i.uses[0]]
            else:
                env[i.defs[0]] = slots[i.imm]
        return env

    def test_pure_cycle_breaks_via_idle_register(self):
        """A 3-cycle with one idle register must resolve with moves only:
        save one value into the idle register, never touch memory."""
        plan = EdgePlan(
            moves=[("R0", "R1"), ("R1", "R2"), ("R2", "R0")],
            busy={"R0", "R1", "R2"},
        )
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        assert all(i.op is Opcode.MOVE for i in instrs)
        assert len(instrs) == 4  # save into idle reg + three cycle moves
        assert instrs[0].defs == ("R3",)  # the only idle register
        env = self._exec(instrs, {"R0": 0, "R1": 1, "R2": 2, "R3": 99})
        assert (env["R0"], env["R1"], env["R2"]) == (1, 2, 0)

    def test_three_cycle_without_free_register_bounces_once(self):
        """Worst case: every register is live across the edge, so one value
        bounces through memory and the rest of the cycle chains."""
        plan = EdgePlan(
            moves=[("R0", "R1"), ("R1", "R2"), ("R2", "R0")],
            busy={"R0", "R1", "R2"},
        )
        instrs = sequence_moves(plan, ["R0", "R1", "R2"], ("x", "y"))
        stores = [i for i in instrs if i.op is Opcode.SPILL_ST]
        loads = [i for i in instrs if i.op is Opcode.SPILL_LD]
        assert len(stores) == 1 and len(loads) == 1
        assert stores[0].imm.startswith("cycle:x->y:")
        assert loads[0].imm == stores[0].imm
        # The bounce store must precede the load that consumes the slot.
        assert instrs.index(stores[0]) < instrs.index(loads[0])
        env = self._exec(instrs, {"R0": 0, "R1": 1, "R2": 2})
        assert (env["R0"], env["R1"], env["R2"]) == (1, 2, 0)

    def test_cycle_break_never_clobbers_a_busy_register(self):
        """The idle register used to break a cycle must not hold a value
        live across the edge (here R2 carries 77 straight through)."""
        plan = EdgePlan(
            moves=[("R0", "R1"), ("R1", "R0")],
            busy={"R0", "R1", "R2"},
        )
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        assert all(i.op is Opcode.MOVE for i in instrs)
        assert all(i.defs[0] != "R2" for i in instrs)
        env = self._exec(instrs, {"R0": 10, "R1": 20, "R2": 77, "R3": 0})
        assert (env["R0"], env["R1"], env["R2"]) == (20, 10, 77)

    def test_disjoint_cycles_without_free_registers_use_distinct_slots(self):
        """Two simultaneous swap cycles with zero idle registers: each
        bounce gets its own slot and both swaps complete correctly."""
        plan = EdgePlan(
            moves=[("R0", "R1"), ("R1", "R0"), ("R2", "R3"), ("R3", "R2")],
            busy={"R0", "R1", "R2", "R3"},
        )
        instrs = sequence_moves(plan, REGS, ("x", "y"))
        stores = [i for i in instrs if i.op is Opcode.SPILL_ST]
        assert len(stores) == 2
        assert len({i.imm for i in stores}) == 2  # distinct bounce slots
        env = self._exec(instrs, {"R0": 1, "R1": 2, "R2": 3, "R3": 4})
        assert (env["R0"], env["R1"], env["R2"], env["R3"]) == (2, 1, 4, 3)


class TestBoundaryPlans:
    def _plans(self, registers=4, config=None):
        config = config or HierarchicalConfig()
        build = build_tile_tree_detailed(figure1())
        ctx = build_context(
            build.tree.fn, Machine.simple(registers), build.tree,
            build.fixup, None,
        )
        allocations = run_phase1(ctx, config)
        run_phase2(ctx, config, allocations)
        return ctx, plan_boundary_code(ctx, config, allocations)

    def test_plans_reference_tile_crossing_edges_only(self):
        ctx, plans = self._plans()
        for (src, dst) in plans:
            assert ctx.tree.tile_of(src) is not ctx.tree.tile_of(dst)

    def test_spill_case_present_under_pressure(self):
        """At R=4 some variable must be stored/reloaded around a loop."""
        ctx, plans = self._plans(registers=4)
        all_ops = [p for p in plans.values()]
        assert any(p.stores or p.loads for p in all_ops)

    def test_no_boundary_code_with_plenty_of_registers(self):
        ctx, plans = self._plans(registers=10)
        total = sum(
            len(p.stores) + len(p.loads) + len(p.moves) for p in plans.values()
        )
        assert total == 0

    def test_store_avoidance_reduces_stores(self):
        _, with_avoid = self._plans(4, HierarchicalConfig(store_avoidance=True))
        _, without = self._plans(4, HierarchicalConfig(store_avoidance=False))
        stores_with = sum(len(p.stores) for p in with_avoid.values())
        stores_without = sum(len(p.stores) for p in without.values())
        assert stores_with <= stores_without
