"""End-to-end tests for irreducible control flow.

The paper (Appendix A): "all blocks in an irreducible loop that are reached
by a forward control flow edge from a basic block outside the loop can be
combined in the tile tree and treated as a single summary loop top."  Our
loop forest groups the whole multiple-entry region into one irreducible
tile; everything downstream (liveness, coloring, spill placement,
rewriting) must still be correct.
"""

import pytest

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.tiles import build_tile_tree, validate_tile_tree


def irreducible_fn():
    """Two-entry cycle: entry branches into the middle of a ping/pong pair.

    ping and pong bounce control between each other while decrementing a
    counter; entry may enter at either, so neither dominates the other.
    """
    b = FunctionBuilder("irred", params=["n", "w"])
    b.block("entry")
    b.const("one", 1)
    b.const("acc", 0)
    b.copy("i", "n")
    b.cbr("w", "ping", "pong")
    b.block("ping")
    b.add("acc", "acc", "one")          # +1 per visit to ping
    b.sub("i", "i", "one")
    b.cbr("i", "pong", "out")
    b.block("pong")
    b.add("acc", "acc", "acc")          # doubling per visit to pong
    b.sub("i", "i", "one")
    b.cbr("i", "ping", "out")
    b.block("out")
    b.ret("acc")
    return b.finish()


class TestStructure:
    def test_cfg_valid(self):
        validate_function(irreducible_fn())

    def test_tile_tree_legal(self):
        fn = irreducible_fn()
        tree = build_tile_tree(fn)
        validate_tile_tree(tree)
        kinds = [t.kind for t in tree.preorder()]
        assert "irreducible" in kinds

    def test_irreducible_tile_covers_cycle(self):
        fn = irreducible_fn()
        tree = build_tile_tree(fn)
        tile = next(t for t in tree.preorder() if t.kind == "irreducible")
        assert {"ping", "pong"} <= tile.all_blocks

    def test_semantics(self):
        fn = irreducible_fn()
        a = simulate(fn, args={"n": 5, "w": 1})
        b = simulate(fn, args={"n": 5, "w": 0})
        assert a.returned != b.returned  # entry point matters


class TestAllocation:
    @pytest.mark.parametrize(
        "allocator_cls",
        [HierarchicalAllocator, ChaitinAllocator, BriggsAllocator],
    )
    @pytest.mark.parametrize("registers", [2, 3, 4, 6])
    @pytest.mark.parametrize("which", [0, 1])
    def test_correct_at_all_pressures(self, allocator_cls, registers, which):
        workload = Workload(
            irreducible_fn(), {"n": 6, "w": which}, {}, name="irred"
        )
        result = compile_function(
            workload, allocator_cls(), Machine.simple(registers)
        )
        assert result.allocated_run.returned == result.reference_run.returned

    def test_hierarchical_handles_nested_irreducible(self):
        """An irreducible region inside a reducible loop."""
        b = FunctionBuilder("nested_irred", params=["n", "w"])
        b.block("entry")
        b.const("one", 1)
        b.const("acc", 0)
        b.copy("o", "n")
        b.br("oh")
        b.block("oh")
        b.copy("i", "n")
        b.cbr("w", "ping", "pong")
        b.block("ping")
        b.add("acc", "acc", "one")
        b.sub("i", "i", "one")
        b.cbr("i", "pong", "onext")
        b.block("pong")
        b.add("acc", "acc", "one")
        b.sub("i", "i", "one")
        b.cbr("i", "ping", "onext")
        b.block("onext")
        b.sub("o", "o", "one")
        b.cbr("o", "oh", "done")
        b.block("done")
        b.ret("acc")
        fn = b.finish()
        validate_function(fn)
        tree = build_tile_tree(fn.clone())
        validate_tile_tree(tree)
        for which in (0, 1):
            workload = Workload(fn, {"n": 4, "w": which}, {}, name="ni")
            result = compile_function(
                workload, HierarchicalAllocator(), Machine.simple(3)
            )
            assert (
                result.allocated_run.returned == result.reference_run.returned
            )
