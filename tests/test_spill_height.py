"""Behavioural tests for the paper's section-2 spill-height scenarios.

"Consider a pair of nested loops and a variable v that cannot be allocated
a register for the inner loop.  It is possible to spill inside of the outer
loop ... but if there are no references to v in the outer loop it is better
to spill the variable outside of the outer loop, in a tile still higher in
the tree."
"""

import pytest

from repro.core import HierarchicalAllocator
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function


def nested_pressure_fn():
    """v is defined before and used after a doubly nested loop; the inner
    loop saturates four registers.  Neither loop references v."""
    b = FunctionBuilder("nested_pressure", params=["n"])
    b.block("pre")
    b.const("one", 1)
    b.mul("v", "n", "n")          # the victim: live across both loops
    b.copy("oi", "n")
    b.const("acc", 0)
    b.br("oh")
    b.block("oh")                  # outer loop: no reference to v
    b.copy("ii", "n")
    b.br("ih")
    b.block("ih")                  # inner loop: 4 referenced variables
    b.add("acc", "acc", "ii")
    b.sub("ii", "ii", "one")
    b.cbr("ii", "ih", "onext")
    b.block("onext")
    b.sub("oi", "oi", "one")
    b.cbr("oi", "oh", "post")
    b.block("post")
    b.add("r", "acc", "v")         # v finally used here
    b.ret("r")
    return b.finish()


def spill_blocks_for(result, var):
    out = {}
    for label, block in result.fn.blocks.items():
        for instr in block.instrs:
            if instr.op in (Opcode.SPILL_LD, Opcode.SPILL_ST) and (
                isinstance(instr.imm, str) and instr.imm == f"slot:{var}"
            ):
                out.setdefault(label, []).append(instr.op)
    return out


class TestSpillHeight:
    def test_victim_spilled_outside_both_loops(self):
        """v's spill code must execute O(1) times: above the outer loop and
        after it -- never once per outer iteration."""
        w = Workload(nested_pressure_fn(), {"n": 10}, {}, name="np")
        result = compile_function(w, HierarchicalAllocator(), Machine.simple(4))
        sites = spill_blocks_for(result, "v")
        assert sites, "expected v to be spilled at R=4"
        counts = result.allocated_run.profile.block_counts
        for label in sites:
            assert counts.get(label, 0) <= 1, (
                f"spill code for v in {label}, executed "
                f"{counts.get(label, 0)} times"
            )

    def test_total_v_traffic_constant_in_trip_count(self):
        machine = Machine.simple(4)
        traffic = {}
        for n in (4, 16):
            w = Workload(nested_pressure_fn(), {"n": n}, {}, name="np")
            result = compile_function(w, HierarchicalAllocator(), machine)
            sites = spill_blocks_for(result, "v")
            counts = result.allocated_run.profile.block_counts
            traffic[n] = sum(
                counts.get(label, 0) * len(ops) for label, ops in sites.items()
            )
        assert traffic[16] == traffic[4], traffic

    def test_inner_loop_clean(self):
        """The innermost (hottest) loop carries no spill code at all; the
        outer loop may legitimately reload variables it *references* (n),
        but never v."""
        w = Workload(nested_pressure_fn(), {"n": 6}, {}, name="np")
        result = compile_function(w, HierarchicalAllocator(), Machine.simple(4))
        inner_ops = [
            i.op for i in result.fn.blocks["ih"].instrs
            if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
        ]
        assert not inner_ops, f"spill code inside the inner loop: {inner_ops}"
        for label in ("ih", "oh", "onext"):
            v_ops = [
                i for i in result.fn.blocks[label].instrs
                if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
                and i.imm == "slot:v"
            ]
            assert not v_ops, f"v traffic inside loop block {label}"
