"""End-to-end tests for the hierarchical allocator (the paper's system)."""

import pytest

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.core import MEM, HierarchicalAllocator, HierarchicalConfig
from repro.ir.instructions import Opcode, is_phys
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.figure1 import FIGURE1_REGISTERS, figure1_workload
from repro.workloads.kernels import all_kernel_workloads
from repro.workloads.generators import random_workload


class TestCorrectness:
    @pytest.mark.parametrize("registers", [2, 3, 4, 6, 8])
    def test_all_kernels(self, registers):
        for workload in all_kernel_workloads(6):
            result = compile_function(
                workload, HierarchicalAllocator(), Machine.simple(registers)
            )
            assert (
                result.reference_run.returned == result.allocated_run.returned
            ), workload.label()

    def test_random_programs(self):
        for seed in range(15):
            workload = random_workload(seed)
            for registers in (2, 4):
                compile_function(
                    workload, HierarchicalAllocator(), Machine.simple(registers)
                )

    def test_output_is_physical(self):
        w = figure1_workload(5)
        result = compile_function(
            w, HierarchicalAllocator(), Machine.simple(4)
        )
        for block in result.fn.blocks.values():
            for instr in block.instrs:
                for var in instr.defs + instr.uses:
                    assert is_phys(var)


class TestFigure1:
    """The paper's worked example (experiment E1)."""

    def _results(self, registers=FIGURE1_REGISTERS, n=10):
        w = figure1_workload(n)
        machine = Machine.simple(registers)
        hier = compile_function(w, HierarchicalAllocator(), machine)
        chaitin = compile_function(w, ChaitinAllocator(), machine)
        return hier, chaitin

    def test_hierarchical_beats_chaitin(self):
        hier, chaitin = self._results()
        assert hier.spill_refs < chaitin.spill_refs

    def test_no_spill_code_inside_loops(self):
        hier, _ = self._results()
        for label in ("B2", "B3"):
            for instr in hier.fn.blocks[label].instrs:
                assert instr.op not in (Opcode.SPILL_LD, Opcode.SPILL_ST), (
                    f"spill code inside loop block {label}"
                )

    def test_chaitin_pays_inside_a_loop(self):
        _, chaitin = self._results()
        in_loop = [
            i
            for label in ("B2", "B3")
            for i in chaitin.fn.blocks[label].instrs
            if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
        ]
        assert in_loop

    def test_spill_refs_constant_in_trip_count(self):
        """Hierarchical spill traffic is O(1) in the trip count; Chaitin's
        grows linearly."""
        h_small, c_small = self._results(n=5)
        h_big, c_big = self._results(n=50)
        assert h_big.spill_refs == h_small.spill_refs
        assert c_big.spill_refs > c_small.spill_refs

    def test_split_allocation_exists(self):
        """E9: some variable lives in a register in one tile and in memory
        in another."""
        w = figure1_workload(10)
        allocator = HierarchicalAllocator()
        compile_function(w, allocator, Machine.simple(FIGURE1_REGISTERS))
        allocations = allocator.last_allocations
        locations = {}
        for alloc in allocations.values():
            for var, loc in alloc.phys.items():
                if var.startswith(("ts:", "tmp:")):
                    continue
                locations.setdefault(var, set()).add(
                    "mem" if loc == MEM else "reg"
                )
        assert any(locs == {"mem", "reg"} for locs in locations.values())


class TestAblationsRun:
    @pytest.mark.parametrize(
        "config",
        [
            HierarchicalConfig(preferencing=False),
            HierarchicalConfig(conditional_tiles=False),
            HierarchicalConfig(store_avoidance=False),
            HierarchicalConfig(demotion=False),
            HierarchicalConfig(spill_temp_strategy="reserve"),
        ],
        ids=["no-pref", "loops-only", "no-store-avoid", "no-demotion", "reserve"],
    )
    def test_ablations_preserve_semantics(self, config):
        for workload in all_kernel_workloads(5)[:5]:
            compile_function(
                workload, HierarchicalAllocator(config), Machine.simple(4)
            )

    def test_reserve_strategy_worse(self):
        """The 'simple solution' of reserving registers costs allocatable
        registers and loses (section 6)."""
        w = figure1_workload(10)
        machine = Machine.simple(4)
        recolor = compile_function(
            w, HierarchicalAllocator(), machine
        )
        reserve = compile_function(
            w,
            HierarchicalAllocator(
                HierarchicalConfig(spill_temp_strategy="reserve")
            ),
            machine,
        )
        assert recolor.spill_refs < reserve.spill_refs

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalConfig(spill_temp_strategy="bogus")

    def test_invalid_heuristic_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalConfig(spill_heuristic="bogus")

    @pytest.mark.parametrize("heuristic", ["cost_over_degree", "cost", "degree"])
    def test_spill_heuristics_preserve_semantics(self, heuristic):
        for workload in all_kernel_workloads(5)[:4]:
            compile_function(
                workload,
                HierarchicalAllocator(
                    HierarchicalConfig(spill_heuristic=heuristic)
                ),
                Machine.simple(3),
            )


class TestParallelMode:
    def test_parallel_matches_sequential(self):
        machine = Machine.simple(4)
        for workload in all_kernel_workloads(5)[:6]:
            seq = compile_function(
                workload, HierarchicalAllocator(), machine
            )
            par = compile_function(
                workload,
                HierarchicalAllocator(
                    HierarchicalConfig(parallel=True, parallel_min_tiles=1)
                ),
                machine,
            )
            assert seq.spill_refs == par.spill_refs
            assert seq.allocated_run.returned == par.allocated_run.returned


class TestProfileGuided:
    def test_profile_frequencies_accepted(self):
        from repro.analysis.frequency import frequencies_from_profile

        w = figure1_workload(10)
        profile = simulate(w.fn, args=w.args, arrays=w.arrays).profile
        freq = frequencies_from_profile(w.fn, profile)
        result = compile_function(
            w,
            HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
            Machine.simple(4),
        )
        assert result.allocated_run.returned == result.reference_run.returned


class TestStats:
    def test_stats_populated(self):
        w = figure1_workload(8)
        result = compile_function(
            w, HierarchicalAllocator(), Machine.simple(4)
        )
        stats = result.stats
        assert stats.extra["tile_count"] >= 4
        assert stats.extra["tree_height"] >= 3
        assert stats.max_graph_nodes > 0
        assert 0 in stats.extra["breadth_profile"]

    def test_spill_blocks_recorded(self):
        w = figure1_workload(8)
        result = compile_function(
            w, HierarchicalAllocator(), Machine.simple(3)
        )
        assert result.stats.spill_block_labels
