"""Tests for the pipeline facade, machine description and rewrite helpers."""

import pytest

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.allocators.base import AllocationOutcome, AllocStats
from repro.core import HierarchicalAllocator
from repro.ir.instructions import Instr, Opcode
from repro.machine.rewrite import (
    AllocationCheckError,
    apply_assignment,
    check_physical,
    count_static_spill_code,
    rewrite_spilled,
    spill_slot,
)
from repro.machine.simulator import SimulationError, simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compare_allocators, compile_function, prepare
from repro.workloads.kernels import dot


class TestMachine:
    def test_registers_named(self):
        m = Machine.simple(3)
        assert m.registers == ["R0", "R1", "R2"]

    def test_needs_one_register(self):
        with pytest.raises(ValueError):
            Machine(num_registers=0)

    def test_callee_save_range_checked(self):
        with pytest.raises(ValueError):
            Machine(num_registers=2, callee_save=frozenset({5}))

    def test_with_linkage(self):
        m = Machine.with_linkage(8, num_callee_save=3, num_args=2)
        assert m.callee_save == frozenset({5, 6, 7})
        assert m.arg_regs == (0, 1)
        assert m.ret_regs == (0,)
        assert m.caller_save == frozenset({0, 1, 2, 3, 4})
        assert m.callee_save_names() == ["R5", "R6", "R7"]

    def test_linkage_needs_caller_save(self):
        with pytest.raises(ValueError):
            Machine.with_linkage(2, num_callee_save=2)


class TestRewriteHelpers:
    def test_spill_slot_stable(self):
        assert spill_slot("x") == "slot:x"

    def test_rewrite_spilled_inserts_loads_stores(self, loop_fn):
        out, temps = rewrite_spilled(loop_fn, {"s"})
        assert temps
        body_ops = [i.op for i in out.blocks["body"].instrs]
        assert Opcode.SPILL_LD in body_ops
        assert Opcode.SPILL_ST in body_ops

    def test_rewrite_spilled_preserves_semantics(self, loop_fn):
        out, _ = rewrite_spilled(loop_fn, {"s", "i"})
        a = simulate(loop_fn, args={"n": 5})
        b = simulate(out, args={"n": 5})
        assert a.returned == b.returned

    def test_rewrite_def_and_use_separate_temps(self, loop_fn):
        out, _ = rewrite_spilled(loop_fn, {"i"})
        add = next(
            i for i in out.blocks["body"].instrs
            if i.op is Opcode.ADD and i.uses and "i@" in i.uses[0]
        )
        assert add.defs[0] != add.uses[0]

    def test_apply_assignment_strict_missing(self, loop_fn):
        with pytest.raises(ValueError, match="unassigned"):
            apply_assignment(loop_fn, {"i": "R0"})

    def test_apply_assignment_full(self, loop_fn):
        mapping = {v: "R0" for v in loop_fn.variables()}
        mapping.update({"i": "R1", "c": "R2", "n": "R3"})
        out = apply_assignment(loop_fn, mapping)
        check_physical(out)

    def test_check_physical_catches_virtual(self, loop_fn):
        with pytest.raises(AllocationCheckError):
            check_physical(loop_fn)

    def test_check_physical_range(self):
        from repro.ir.builder import FunctionBuilder

        b = FunctionBuilder("f")
        b.block("one")
        b.const("R7", 1)
        b.ret("R7")
        fn = b.finish()
        check_physical(fn, num_registers=8)
        with pytest.raises(AllocationCheckError):
            check_physical(fn, num_registers=4)

    def test_count_static_spill_code(self, loop_fn):
        out, _ = rewrite_spilled(loop_fn, {"s"})
        counts = count_static_spill_code(out)
        assert counts["spill_loads"] > 0
        assert counts["spill_stores"] > 0
        assert counts["moves"] == 0


class TestPipeline:
    def _workload(self):
        return Workload(
            dot(), args={"n": 4},
            arrays={"A": [1, 2, 3, 4], "B": [4, 3, 2, 1]}, name="dot",
        )

    def test_prepare_renames(self):
        fn = prepare(dot())
        assert fn is not None

    def test_prepare_can_skip_rename(self):
        fn = dot()
        assert prepare(fn, rename=False) is fn

    def test_verification_catches_bad_allocator(self):
        class BrokenAllocator(ChaitinAllocator):
            name = "broken"

            def allocate(self, fn, machine):
                outcome = super().allocate(fn, machine)
                # Corrupt: swap the operands of the first mul.
                for block in outcome.fn.blocks.values():
                    for idx, instr in enumerate(block.instrs):
                        if instr.op is Opcode.MUL:
                            broken = instr.clone()
                            broken.uses = (instr.uses[0], instr.uses[0])
                            block.instrs[idx] = broken
                            return outcome
                return outcome

        with pytest.raises(SimulationError):
            compile_function(
                self._workload(), BrokenAllocator(), Machine.simple(8)
            )

    def test_compare_allocators(self):
        results = compare_allocators(
            self._workload(),
            [ChaitinAllocator(), BriggsAllocator(), HierarchicalAllocator()],
            Machine.simple(4),
        )
        assert set(results) == {"chaitin", "briggs", "hierarchical"}
        returned = {r.allocated_run.returned for r in results.values()}
        assert returned == {(20,)}

    def test_overhead_summary(self):
        result = compile_function(
            self._workload(), ChaitinAllocator(), Machine.simple(3)
        )
        summary = result.overhead_summary
        assert summary["spill_loads"] == result.allocated_run.spill_loads
        assert summary["program_refs"] > 0

    def test_missing_argument_detected(self):
        w = Workload(dot(), args={}, arrays={})
        with pytest.raises(SimulationError):
            compile_function(w, ChaitinAllocator(), Machine.simple(4))
