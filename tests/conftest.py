"""Shared fixtures for the test suite."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.machine.target import Machine
from repro.workloads.kernels import dot


@pytest.fixture
def dot_fn():
    return dot()


@pytest.fixture
def machine4():
    return Machine.simple(4)


@pytest.fixture
def machine2():
    return Machine.simple(2)


def build_diamond():
    """start -> entry -> (then|else) -> join -> stop, returning max-ish."""
    b = FunctionBuilder("diamond", params=["x"])
    b.block("entry")
    b.const("ten", 10)
    b.cmplt("c", "x", "ten")
    b.cbr("c", "then", "els")
    b.block("then")
    b.add("r", "x", "ten")
    b.br("join")
    b.block("els")
    b.sub("r", "x", "ten")
    b.br("join")
    b.block("join")
    b.ret("r")
    return b.finish()


def build_loop():
    """A counted loop summing 1..n."""
    b = FunctionBuilder("count", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("s", 0)
    b.const("one", 1)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.add("i", "i", "one")
    b.add("s", "s", "i")
    b.br("head")
    b.block("done")
    b.ret("s")
    return b.finish()


@pytest.fixture
def diamond_fn():
    return build_diamond()


@pytest.fixture
def loop_fn():
    return build_loop()
