"""Tests for loop unrolling."""

import pytest

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.unroll import UnrollError, unroll_innermost, unroll_loop
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.generators import random_workload
from repro.workloads.kernels import dot, matmul


class TestUnrollStructure:
    def test_block_count_grows(self, loop_fn):
        out = unroll_loop(loop_fn, factor=3)
        validate_function(out)
        assert len(out.blocks) == len(loop_fn.blocks) + 2 * 2  # head+body x2

    def test_factor_one_is_identity(self, loop_fn):
        out = unroll_loop(loop_fn, factor=1)
        assert len(out.blocks) == len(loop_fn.blocks)

    def test_no_loops_rejected(self, diamond_fn):
        with pytest.raises(UnrollError):
            unroll_loop(diamond_fn)

    def test_unknown_header_rejected(self, loop_fn):
        with pytest.raises(UnrollError):
            unroll_loop(loop_fn, header="nosuch")

    def test_irreducible_rejected(self):
        from tests.test_irreducible import irreducible_fn

        with pytest.raises(UnrollError):
            unroll_loop(irreducible_fn(), header="ping")


class TestUnrollSemantics:
    @pytest.mark.parametrize("factor", [2, 3, 4])
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 7])
    def test_dot_any_trip_count(self, factor, n):
        """Per-copy exit tests make any trip count correct, including ones
        that do not divide the factor."""
        fn = dot()
        out = unroll_loop(fn, factor=factor)
        validate_function(out)
        arrays = {"A": list(range(1, 8)), "B": list(range(2, 9))}
        a = simulate(fn, args={"n": n}, arrays=arrays)
        b = simulate(out, args={"n": n}, arrays=arrays)
        assert a.returned == b.returned

    def test_nested_loop_innermost(self):
        fn = matmul()
        out = unroll_loop(fn, header="kh", factor=2)
        validate_function(out)
        arrays = {"A": list(range(1, 10)), "B": list(range(2, 11))}
        a = simulate(fn, args={"n": 3}, arrays=arrays)
        b = simulate(out, args={"n": 3}, arrays=arrays)
        assert a.arrays["C"] == b.arrays["C"]

    def test_unroll_innermost_all(self):
        fn = matmul()
        out = unroll_innermost(fn, factor=2)
        validate_function(out)
        arrays = {"A": [1] * 9, "B": [2] * 9}
        a = simulate(fn, args={"n": 3}, arrays=arrays)
        b = simulate(out, args={"n": 3}, arrays=arrays)
        assert a.arrays["C"] == b.arrays["C"]

    def test_random_programs(self):
        done = 0
        for seed in range(20):
            w = random_workload(seed)
            try:
                out = unroll_innermost(w.fn, factor=2)
            except UnrollError:
                continue
            validate_function(out)
            a = simulate(w.fn, args=w.args, arrays=w.arrays)
            b = simulate(out, args=dict(w.args), arrays=w.arrays)
            assert a.returned == b.returned, seed
            done += 1
        assert done > 3  # most random programs have loops


class TestUnrollAllocation:
    @pytest.mark.parametrize(
        "allocator_cls", [HierarchicalAllocator, ChaitinAllocator]
    )
    def test_unrolled_programs_allocate(self, allocator_cls):
        fn = unroll_loop(dot(), factor=4)
        w = Workload(
            fn, {"n": 7},
            {"A": list(range(1, 8)), "B": list(range(2, 9))}, name="dot4x",
        )
        result = compile_function(w, allocator_cls(), Machine.simple(3))
        assert result.allocated_run.returned == result.reference_run.returned

    def test_unrolled_loop_is_one_tile(self):
        """The whole unrolled body lands inside the loop tile, so spill
        placement still targets the (single) loop boundary."""
        from repro.tiles import build_tile_tree

        fn = unroll_loop(dot(), factor=4)
        tree = build_tile_tree(fn)
        loops = [t for t in tree.preorder() if t.kind == "loop"]
        assert len(loops) == 1
        assert {"body", "body.u1", "body.u2", "body.u3"} <= loops[0].all_blocks
