"""Tests for tile trees: construction (Appendix A), fix-up (Figure 3) and
legality validation (section 2)."""

import pytest

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode
from repro.ir.validate import validate_function
from repro.tiles import (
    Tile,
    TileTree,
    TileTreeError,
    TileTreeOptions,
    build_tile_tree,
    edge_violations,
    validate_tile_tree,
)
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.figure1 import figure1
from repro.workloads.generators import random_program
from repro.workloads.kernels import cond_sum, matmul, nested_cond


class TestBasicShapes:
    def test_loop_fn_tree(self, loop_fn):
        tree = build_tile_tree(loop_fn)
        validate_tile_tree(tree)
        root_own = tree.root.own_blocks()
        assert root_own == {"start", "stop"}
        kinds = [t.kind for t in tree.preorder()]
        assert kinds[0] == "root"
        assert "loop" in kinds

    def test_loop_tile_blocks(self, loop_fn):
        tree = build_tile_tree(loop_fn)
        loop_tile = next(t for t in tree.preorder() if t.kind == "loop")
        assert loop_tile.all_blocks == {"head", "body"}
        assert loop_tile.header == "head"

    def test_diamond_tree_legal(self, diamond_fn):
        tree = build_tile_tree(diamond_fn)
        validate_tile_tree(tree)

    def test_matmul_nests_three_loops(self):
        tree = build_tile_tree(matmul())
        validate_tile_tree(tree)
        loops = [t for t in tree.preorder() if t.kind == "loop"]
        assert len(loops) == 3
        depths = sorted(t.depth() for t in loops)
        assert depths[0] < depths[1] < depths[2]

    def test_figure1_structure(self):
        """Figure 1: two sequential loop tiles under the body region."""
        tree = build_tile_tree(figure1())
        validate_tile_tree(tree)
        loops = [t for t in tree.preorder() if t.kind == "loop"]
        assert len(loops) == 2
        headers = {t.header for t in loops}
        assert headers == {"B2", "B3"}
        # Neither loop contains the other.
        a, b = loops
        assert not (a.all_blocks & b.all_blocks)

    def test_conditional_tiles_present(self):
        tree = build_tile_tree(nested_cond())
        conds = [t for t in tree.preorder() if t.kind == "cond"]
        assert conds, "expected conditional (SESE) tiles"

    def test_loops_only_option(self):
        tree = build_tile_tree(
            nested_cond(), TileTreeOptions(conditional_tiles=False)
        )
        validate_tile_tree(tree)
        assert all(t.kind != "cond" for t in tree.preorder())


class TestTileQueries:
    def test_tile_of(self, loop_fn):
        tree = build_tile_tree(loop_fn)
        assert tree.tile_of("start") is tree.root
        assert tree.tile_of("head").kind == "loop"

    def test_entry_exit_edges(self, loop_fn):
        tree = build_tile_tree(loop_fn)
        loop_tile = next(t for t in tree.preorder() if t.kind == "loop")
        entries = tree.entry_edges(loop_tile)
        exits = tree.exit_edges(loop_tile)
        assert [dst for _, dst in entries] == ["head"]
        assert [src for src, _ in exits] == ["head"]

    def test_boundary_block_count_structured(self, loop_fn):
        """'For structured programs, this number is 2' -- here entry and
        exit pass through the header, so Z_t == 1."""
        tree = build_tile_tree(loop_fn)
        loop_tile = next(t for t in tree.preorder() if t.kind == "loop")
        assert tree.boundary_block_count(loop_tile) <= 2

    def test_height_and_breadth(self):
        tree = build_tile_tree(matmul())
        assert tree.height() >= 4  # root, body, 3 nested loops
        profile = tree.breadth_profile()
        assert profile[0] == 1

    def test_format_renders(self, loop_fn):
        text = build_tile_tree(loop_fn).format()
        assert "root" in text and "loop" in text


class TestValidationErrors:
    def _tree_for(self, fn):
        return build_tile_tree(fn)

    def test_coverage_violation(self, loop_fn):
        tree = self._tree_for(loop_fn)
        tree.root.all_blocks.discard("done")
        with pytest.raises(TileTreeError, match="cover"):
            validate_tile_tree(tree)

    def test_sibling_overlap(self, loop_fn):
        tree = self._tree_for(loop_fn)
        body = tree.root.children[0]
        extra = Tile({"head"}, kind="cond")
        extra.parent = body
        body.children.append(extra)
        with pytest.raises(TileTreeError):
            validate_tile_tree(tree)

    def test_root_must_own_start_stop_only(self, loop_fn):
        tree = self._tree_for(loop_fn)
        body = tree.root.children[0]
        body.all_blocks.discard("entry")
        for child in body.children:
            child.all_blocks.discard("entry")
        tree._rebuild_smallest()
        with pytest.raises(TileTreeError, match="blocks\\(root\\)"):
            validate_tile_tree(tree)

    def test_edge_condition_violation(self):
        """Craft a tree whose tiles an edge skips levels across."""
        fn = Function("f", start_label="s", stop_label="t")
        fn.add_block(BasicBlock("s", [], ["a"]))
        fn.add_block(BasicBlock("a", [], ["b"]))
        fn.add_block(BasicBlock("b", [], ["t"]))
        fn.add_block(BasicBlock("t", []))
        root = Tile({"s", "a", "b", "t"}, kind="root")
        outer = Tile({"a", "b"}, kind="cond")
        inner = Tile({"b"}, kind="cond")
        outer.parent = root
        root.children.append(outer)
        inner.parent = outer
        outer.children.append(inner)
        # blocks(root) = {s, t}; edge b->t exits two levels at once.
        tree = TileTree(fn, root)
        violations = edge_violations(tree)
        assert violations
        with pytest.raises(TileTreeError, match="edge"):
            validate_tile_tree(tree)


class TestFixup:
    def test_fixup_produces_legal_tree_from_break(self):
        """A loop with a break edge jumping two levels out needs fix-up."""
        b = FunctionBuilder("f", params=["n"])
        b.block("entry")
        b.const("i", 0)
        b.const("one", 1)
        b.const("lim", 5)
        b.br("head")
        b.block("head")
        b.cmplt("c", "i", "n")
        b.cbr("c", "body", "done")
        b.block("body")
        b.add("i", "i", "one")
        b.cmpgt("brk", "i", "lim")
        b.cbr("brk", "out", "head")   # break: exits the loop from the body
        b.block("out")
        b.ret("i")
        b.block("done")
        b.ret("i")
        fn = b.finish()
        validate_function(fn)
        build = build_tile_tree_detailed(fn)
        validate_tile_tree(build.tree)
        validate_function(fn)

    def test_fixup_stats_recorded_on_random_programs(self):
        total = 0
        for seed in range(10):
            fn = random_program(seed)
            build = build_tile_tree_detailed(fn)
            validate_tile_tree(build.tree)
            total += build.fixup.total
            for label in build.fixup.inserted_labels:
                assert label in build.fixup.orig_edge
        # Many random programs need at least some fix-up blocks.
        assert total >= 0

    def test_random_trees_always_legal(self):
        for seed in range(25):
            fn = random_program(seed)
            tree = build_tile_tree(fn)
            validate_tile_tree(tree)
            validate_function(fn)

    def test_cond_sum_tree(self):
        tree = build_tile_tree(cond_sum())
        validate_tile_tree(tree)
        # The if/else diamond inside the loop becomes a conditional tile.
        conds = [t for t in tree.preorder() if t.kind == "cond"]
        assert any(
            {"ifneg", "ifpos"} <= t.all_blocks for t in conds
        )
