"""Smoke tests: every example script runs to completion.

Examples are documentation; a broken example is a broken promise.  Each is
executed in-process (so coverage and failures surface normally) with its
stdout captured.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, main_args=None):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        if main_args is None:
            module.main()
        else:
            module.main(*main_args)
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "returned value:        55" in out
        assert "tile tree:" in out

    def test_figure1_walkthrough(self):
        out = run_example("figure1_walkthrough.py")
        assert "improvement:" in out
        assert "tile" in out.lower()

    def test_loop_kernels(self):
        out = run_example("loop_kernels.py", main_args=[[4]])
        assert "dot" in out
        assert "hierarchical" in out

    def test_profile_guided(self):
        out = run_example("profile_guided.py")
        assert "fast path: hierarchical 0 spill refs" in out

    def test_minilang_demo(self):
        out = run_example("minilang_demo.py")
        assert "histogram" in out
        assert "gcd_sum" in out


class TestSamplePrograms:
    def test_all_ir_files_parse_and_run(self):
        from repro.ir import parse_function, validate_function

        programs_dir = os.path.join(EXAMPLES_DIR, "programs")
        ir_files = [f for f in os.listdir(programs_dir) if f.endswith(".ir")]
        assert ir_files
        for name in ir_files:
            with open(os.path.join(programs_dir, name)) as fh:
                fn = parse_function(fh.read())
            validate_function(fn)

    def test_all_minilang_files_compile(self):
        from repro.minilang import compile_source

        programs_dir = os.path.join(EXAMPLES_DIR, "programs")
        ml_files = [f for f in os.listdir(programs_dir) if f.endswith(".ml")]
        assert ml_files
        for name in ml_files:
            with open(os.path.join(programs_dir, name)) as fh:
                compile_source(fh.read())
