"""Tests for the IR interpreter (objective function + profiler)."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Instr, Opcode
from repro.machine.simulator import (
    POISON,
    SimulationError,
    run_equivalent,
    simulate,
)
from repro.workloads.kernels import dot


class TestBasicExecution:
    def test_dot(self):
        result = simulate(
            dot(), args={"n": 4}, arrays={"A": [1, 2, 3, 4], "B": [5, 6, 7, 8]}
        )
        assert result.returned == (70,)

    def test_missing_argument(self, loop_fn):
        with pytest.raises(SimulationError):
            simulate(loop_fn)

    def test_unknown_argument(self, loop_fn):
        with pytest.raises(SimulationError):
            simulate(loop_fn, args={"n": 1, "bogus": 2})

    def test_unset_variable_read(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.add("x", "never", "never")
        b.ret("x")
        fn = b.finish()
        with pytest.raises(SimulationError, match="unset variable"):
            simulate(fn)

    def test_step_limit(self):
        b = FunctionBuilder("f")
        b.block("spin")
        b.const("t", 1)
        b.cbr("t", "spin", "out")
        b.block("out")
        b.ret("t")
        fn = b.finish()
        with pytest.raises(SimulationError, match="exceeded"):
            simulate(fn, max_steps=100)

    def test_branch_directions(self, diamond_fn):
        low = simulate(diamond_fn, args={"x": 3})
        high = simulate(diamond_fn, args={"x": 30})
        assert low.returned == (13,)
        assert high.returned == (20,)


class TestMemoryModel:
    def test_arrays_default_zero(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("i", 99)
        b.load("v", "A", "i")
        b.ret("v")
        fn = b.finish()
        assert simulate(fn).returned == (0,)

    def test_store_visible_in_result(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("i", 2)
        b.const("v", 42)
        b.store("A", "i", "v")
        b.ret("v")
        fn = b.finish()
        result = simulate(fn)
        assert result.arrays["A"][2] == 42

    def test_input_arrays_not_mutated(self):
        source = [1, 2, 3]
        b = FunctionBuilder("f")
        b.block("one")
        b.const("i", 0)
        b.const("v", 9)
        b.store("A", "i", "v")
        b.ret("v")
        fn = b.finish()
        simulate(fn, arrays={"A": source})
        assert source == [1, 2, 3]

    def test_spill_slots(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("v", 7)
        b.emit(Instr(Opcode.SPILL_ST, uses=("v",), imm="slot:x"))
        b.emit(Instr(Opcode.SPILL_LD, defs=("w",), imm="slot:x"))
        b.ret("w")
        fn = b.finish()
        result = simulate(fn)
        assert result.returned == (7,)
        assert result.spill_loads == 1
        assert result.spill_stores == 1

    def test_reload_from_unwritten_slot(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.emit(Instr(Opcode.SPILL_LD, defs=("w",), imm="slot:never"))
        b.ret("w")
        fn = b.finish()
        with pytest.raises(SimulationError, match="never-stored slot"):
            simulate(fn)

    def test_param_home_slot_initialized(self):
        """The calling convention places arguments in their home slots."""
        b = FunctionBuilder("f", params=["n"])
        b.block("one")
        b.emit(Instr(Opcode.SPILL_LD, defs=("w",), imm="slot:n"))
        b.ret("w")
        fn = b.finish()
        assert simulate(fn, args={"n": 13}).returned == (13,)


class TestCounters:
    def test_memory_reference_split(self):
        result = simulate(
            dot(), args={"n": 3}, arrays={"A": [1, 1, 1], "B": [1, 1, 1]}
        )
        assert result.program_memory_refs == 6  # two loads per iteration
        assert result.spill_memory_refs == 0
        assert result.total_memory_refs == 6

    def test_profile_counts(self):
        result = simulate(
            dot(), args={"n": 5}, arrays={"A": [0] * 5, "B": [0] * 5}
        )
        profile = result.profile
        assert profile.block_counts["body"] == 5
        assert profile.block_counts["head"] == 6
        assert profile.edge_counts[("head", "body")] == 5
        assert profile.edge_counts[("head", "done")] == 1

    def test_profile_merge(self):
        a = simulate(dot(), args={"n": 2}, arrays={}).profile
        b = simulate(dot(), args={"n": 3}, arrays={}).profile
        merged = a.merge(b)
        assert merged.block_counts["body"] == 5

    def test_cost_model(self):
        result = simulate(
            dot(), args={"n": 2}, arrays={"A": [1, 1], "B": [1, 1]}
        )
        assert result.cost() == 0.0  # no spill traffic in virtual form


class TestCalls:
    def test_intrinsic_call(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", -5)
        b.call(["y"], "abs", ["x"])
        b.ret("y")
        fn = b.finish()
        assert simulate(fn).returned == (5,)

    def test_unknown_callee(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", 1)
        b.call(["y"], "nosuch", ["x"])
        b.ret("y")
        fn = b.finish()
        with pytest.raises(SimulationError, match="unknown callee"):
            simulate(fn)

    def test_clobbered_register_poisoned(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("R1", 5)
        b.const("x", 1)
        b.emit(
            Instr(Opcode.CALL, defs=("y",), uses=("x",), imm="abs",
                  clobbers=("R1",))
        )
        b.add("z", "R1", "y")
        b.ret("z")
        fn = b.finish()
        with pytest.raises(SimulationError, match="clobbered"):
            simulate(fn)

    def test_custom_intrinsics(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", 4)
        b.call(["y"], "triple", ["x"])
        b.ret("y")
        fn = b.finish()
        result = simulate(fn, intrinsics={"triple": lambda v: 3 * v})
        assert result.returned == (12,)


class TestRunEquivalent:
    def test_matching_pair(self):
        a, b = run_equivalent(
            dot(), dot(), args={"n": 2}, arrays={"A": [1, 2], "B": [3, 4]}
        )
        assert a.returned == b.returned == (11,)

    def test_mismatch_detected(self, diamond_fn):
        broken = diamond_fn.clone()
        broken.blocks["then"].instrs[0] = Instr(
            Opcode.SUB, defs=("r",), uses=("x", "ten")
        )
        with pytest.raises(SimulationError, match="return mismatch"):
            run_equivalent(diamond_fn, broken, args={"x": 3})
