"""Differential tests for the flat-arena analysis core.

The cold path lowers each function once into a :class:`FunctionArena`
(flat instruction/def/use tables over the interned ``VarIndex``, CSR
block adjacency) and runs liveness as word-level bitset sweeps over it;
``build_interference`` then consumes the arena's per-instruction tables
directly (``liveness.arena`` engages the fast path).  The string-set
oracle in :mod:`repro.analysis.reference` is the seed algorithm,
preserved verbatim as the differential reference -- every result below
must match it exactly, not approximately.

Coverage: hypothesis fuzzing over structured random programs, plus the
handcrafted edge cases the fuzzer reaches rarely -- irreducible
(multiple-entry) loops, branch-only pass-through blocks, and blocks
unreachable from the entry.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness, liveness_from_arena
from repro.analysis.reference import reference_interference, reference_liveness
from repro.graph.interference import build_interference
from repro.ir.builder import FunctionBuilder
from repro.perf.arena import build_arena
from repro.workloads.generators import random_program

SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _arena_liveness(fn):
    return liveness_from_arena(build_arena(fn))


def _assert_liveness_matches(fn):
    fast = _arena_liveness(fn)
    ref = reference_liveness(fn)
    assert fast.live_in == ref.live_in
    assert fast.live_out == ref.live_out
    for label in fn.blocks:
        assert fast.instr_live_out(label) == ref.instr_live_out(label)
        assert fast.instr_live_in(label) == ref.instr_live_in(label)


def _assert_interference_matches(fn, labels=None, relevant=None):
    liveness = _arena_liveness(fn)
    assert liveness.arena is not None, "arena fast path not engaged"
    fast = build_interference(fn, liveness, labels=labels, relevant=relevant)
    ref = reference_interference(
        fn, reference_liveness(fn), labels=labels, relevant=relevant
    )
    assert sorted(fast.nodes()) == sorted(ref.nodes())
    assert sorted(fast.edges()) == sorted(ref.edges())
    # The incremental neighbor/degree caches must agree with the masks
    # they summarize (the coloring engine trusts them blindly).
    ids = fast.node_ids()
    nbrs = fast.neighbor_ids()
    degs = fast.degree_map()
    for name in fast.nodes():
        i = ids[name]
        assert degs[i] == len(nbrs[i])
        assert sorted(fast.neighbors(name)) == sorted(
            ref.neighbors(name)
        )


# ----------------------------------------------------------------------
# fuzzed equivalence
# ----------------------------------------------------------------------

@given(seed=SEEDS)
@COMMON
def test_arena_liveness_equals_oracle(seed):
    """Arena bitset sweeps produce exactly the oracle's frozensets."""
    _assert_liveness_matches(random_program(seed))


@given(seed=SEEDS)
@COMMON
def test_arena_liveness_equals_nonarena_bitset(seed):
    """Both bitset paths (arena and per-function dict walk) agree --
    guards against the two lowerings drifting apart."""
    fn = random_program(seed)
    arena_lv = _arena_liveness(fn)
    plain_lv = compute_liveness(fn)
    assert arena_lv.live_in == plain_lv.live_in
    assert arena_lv.live_out == plain_lv.live_out


@given(seed=SEEDS)
@COMMON
def test_arena_interference_equals_oracle(seed):
    _assert_interference_matches(random_program(seed))


@given(seed=SEEDS)
@COMMON
def test_arena_interference_equals_oracle_restricted(seed):
    """Tile-style restricted construction (subset of blocks + relevant
    filter) through the arena fast path."""
    fn = random_program(seed)
    labels = sorted(fn.blocks)[: max(1, len(fn.blocks) // 2)]
    relevant = set()
    for label in labels:
        relevant |= fn.blocks[label].variables()
    relevant = set(sorted(relevant)[: max(1, len(relevant) // 2)])
    _assert_interference_matches(fn, labels=labels, relevant=relevant)


# ----------------------------------------------------------------------
# handcrafted edge cases
# ----------------------------------------------------------------------

def _irreducible_fn():
    """Two-entry cycle: entry branches into the middle of a ping/pong
    pair, so neither loop block dominates the other and the worklist
    must iterate the cycle to a fixed point from both sides."""
    b = FunctionBuilder("irred", params=["n", "w"])
    b.block("entry")
    b.const("one", 1)
    b.const("acc", 0)
    b.copy("i", "n")
    b.cbr("w", "ping", "pong")
    b.block("ping")
    b.add("acc", "acc", "one")
    b.sub("i", "i", "one")
    b.cbr("i", "pong", "out")
    b.block("pong")
    b.add("acc", "acc", "acc")
    b.sub("i", "i", "one")
    b.cbr("i", "ping", "out")
    b.block("out")
    b.ret("acc")
    return b.finish()


def _empty_block_fn():
    """Pass-through blocks holding only a branch: no defs, no uses --
    their live-in must equal their live-out, and the arena's per-block
    instruction ranges are empty slices."""
    b = FunctionBuilder("empties", params=["n"])
    b.block("entry")
    b.const("one", 1)
    b.add("x", "n", "one")
    b.cbr("x", "hop_a", "hop_b")
    b.block("hop_a")        # branch-only
    b.br("join")
    b.block("hop_b")        # branch-only
    b.br("mid")
    b.block("mid")          # branch-only chain
    b.br("join")
    b.block("join")
    b.add("y", "x", "n")
    b.ret("y")
    return b.finish()


def _irreducible_empty_fn():
    """Irreducible cycle whose members include a branch-only block: the
    combination the issue calls out (empty blocks inside a
    multiple-entry region)."""
    b = FunctionBuilder("irred_empty", params=["n", "w"])
    b.block("entry")
    b.const("one", 1)
    b.copy("i", "n")
    b.cbr("w", "hop", "work")
    b.block("hop")          # branch-only member of the cycle
    b.br("work")
    b.block("work")
    b.sub("i", "i", "one")
    b.cbr("i", "hop", "out")
    b.block("out")
    b.ret("i")
    return b.finish()


def test_irreducible_loop_matches_oracle():
    fn = _irreducible_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)


def test_empty_blocks_match_oracle():
    fn = _empty_block_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)
    # Branch-only blocks carry liveness straight through.
    lv = _arena_liveness(fn)
    for label in ("hop_a", "hop_b", "mid"):
        assert lv.live_in[label] == lv.live_out[label]


def test_irreducible_with_empty_member_matches_oracle():
    fn = _irreducible_empty_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)


def test_restricted_to_empty_blocks_only():
    """A tile made only of branch-only blocks: the graph still gets one
    node per relevant variable (referenced-in-tile set is empty, so the
    node set comes purely from the relevant filter's live coverage)."""
    fn = _empty_block_fn()
    _assert_interference_matches(
        fn, labels=["hop_a", "hop_b", "mid"], relevant={"x", "n"}
    )
