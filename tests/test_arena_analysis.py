"""Differential tests for the flat-arena analysis core.

The cold path lowers each function once into a :class:`FunctionArena`
(flat instruction/def/use tables over the interned ``VarIndex``, CSR
block adjacency) and runs liveness as word-level bitset sweeps over it;
``build_interference`` then consumes the arena's per-instruction tables
directly (``liveness.arena`` engages the fast path).  The string-set
oracle in :mod:`repro.analysis.reference` is the seed algorithm,
preserved verbatim as the differential reference -- every result below
must match it exactly, not approximately.

Coverage: hypothesis fuzzing over structured random programs, plus the
handcrafted edge cases the fuzzer reaches rarely -- irreducible
(multiple-entry) loops, branch-only pass-through blocks, and blocks
unreachable from the entry.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness, liveness_from_arena
from repro.analysis.reference import reference_interference, reference_liveness
from repro.graph.interference import build_interference
from repro.ir.builder import FunctionBuilder
from repro.perf.arena import build_arena
from repro.workloads.generators import random_program

SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _arena_liveness(fn):
    return liveness_from_arena(build_arena(fn))


def _assert_liveness_matches(fn):
    fast = _arena_liveness(fn)
    ref = reference_liveness(fn)
    assert fast.live_in == ref.live_in
    assert fast.live_out == ref.live_out
    for label in fn.blocks:
        assert fast.instr_live_out(label) == ref.instr_live_out(label)
        assert fast.instr_live_in(label) == ref.instr_live_in(label)


def _assert_interference_matches(fn, labels=None, relevant=None):
    liveness = _arena_liveness(fn)
    assert liveness.arena is not None, "arena fast path not engaged"
    fast = build_interference(fn, liveness, labels=labels, relevant=relevant)
    ref = reference_interference(
        fn, reference_liveness(fn), labels=labels, relevant=relevant
    )
    assert sorted(fast.nodes()) == sorted(ref.nodes())
    assert sorted(fast.edges()) == sorted(ref.edges())
    # The incremental neighbor/degree caches must agree with the masks
    # they summarize (the coloring engine trusts them blindly).
    ids = fast.node_ids()
    nbrs = fast.neighbor_ids()
    degs = fast.degree_map()
    for name in fast.nodes():
        i = ids[name]
        assert degs[i] == len(nbrs[i])
        assert sorted(fast.neighbors(name)) == sorted(
            ref.neighbors(name)
        )


# ----------------------------------------------------------------------
# fuzzed equivalence
# ----------------------------------------------------------------------

@given(seed=SEEDS)
@COMMON
def test_arena_liveness_equals_oracle(seed):
    """Arena bitset sweeps produce exactly the oracle's frozensets."""
    _assert_liveness_matches(random_program(seed))


@given(seed=SEEDS)
@COMMON
def test_arena_liveness_equals_nonarena_bitset(seed):
    """Both bitset paths (arena and per-function dict walk) agree --
    guards against the two lowerings drifting apart."""
    fn = random_program(seed)
    arena_lv = _arena_liveness(fn)
    plain_lv = compute_liveness(fn)
    assert arena_lv.live_in == plain_lv.live_in
    assert arena_lv.live_out == plain_lv.live_out


@given(seed=SEEDS)
@COMMON
def test_arena_interference_equals_oracle(seed):
    _assert_interference_matches(random_program(seed))


@given(seed=SEEDS)
@COMMON
def test_arena_interference_equals_oracle_restricted(seed):
    """Tile-style restricted construction (subset of blocks + relevant
    filter) through the arena fast path."""
    fn = random_program(seed)
    labels = sorted(fn.blocks)[: max(1, len(fn.blocks) // 2)]
    relevant = set()
    for label in labels:
        relevant |= fn.blocks[label].variables()
    relevant = set(sorted(relevant)[: max(1, len(relevant) // 2)])
    _assert_interference_matches(fn, labels=labels, relevant=relevant)


# ----------------------------------------------------------------------
# handcrafted edge cases
# ----------------------------------------------------------------------

def _irreducible_fn():
    """Two-entry cycle: entry branches into the middle of a ping/pong
    pair, so neither loop block dominates the other and the worklist
    must iterate the cycle to a fixed point from both sides."""
    b = FunctionBuilder("irred", params=["n", "w"])
    b.block("entry")
    b.const("one", 1)
    b.const("acc", 0)
    b.copy("i", "n")
    b.cbr("w", "ping", "pong")
    b.block("ping")
    b.add("acc", "acc", "one")
    b.sub("i", "i", "one")
    b.cbr("i", "pong", "out")
    b.block("pong")
    b.add("acc", "acc", "acc")
    b.sub("i", "i", "one")
    b.cbr("i", "ping", "out")
    b.block("out")
    b.ret("acc")
    return b.finish()


def _empty_block_fn():
    """Pass-through blocks holding only a branch: no defs, no uses --
    their live-in must equal their live-out, and the arena's per-block
    instruction ranges are empty slices."""
    b = FunctionBuilder("empties", params=["n"])
    b.block("entry")
    b.const("one", 1)
    b.add("x", "n", "one")
    b.cbr("x", "hop_a", "hop_b")
    b.block("hop_a")        # branch-only
    b.br("join")
    b.block("hop_b")        # branch-only
    b.br("mid")
    b.block("mid")          # branch-only chain
    b.br("join")
    b.block("join")
    b.add("y", "x", "n")
    b.ret("y")
    return b.finish()


def _irreducible_empty_fn():
    """Irreducible cycle whose members include a branch-only block: the
    combination the issue calls out (empty blocks inside a
    multiple-entry region)."""
    b = FunctionBuilder("irred_empty", params=["n", "w"])
    b.block("entry")
    b.const("one", 1)
    b.copy("i", "n")
    b.cbr("w", "hop", "work")
    b.block("hop")          # branch-only member of the cycle
    b.br("work")
    b.block("work")
    b.sub("i", "i", "one")
    b.cbr("i", "hop", "out")
    b.block("out")
    b.ret("i")
    return b.finish()


def test_irreducible_loop_matches_oracle():
    fn = _irreducible_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)


def test_empty_blocks_match_oracle():
    fn = _empty_block_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)
    # Branch-only blocks carry liveness straight through.
    lv = _arena_liveness(fn)
    for label in ("hop_a", "hop_b", "mid"):
        assert lv.live_in[label] == lv.live_out[label]


def test_irreducible_with_empty_member_matches_oracle():
    fn = _irreducible_empty_fn()
    _assert_liveness_matches(fn)
    _assert_interference_matches(fn)


def test_restricted_to_empty_blocks_only():
    """A tile made only of branch-only blocks: the graph still gets one
    node per relevant variable (referenced-in-tile set is empty, so the
    node set comes purely from the relevant filter's live coverage)."""
    fn = _empty_block_fn()
    _assert_interference_matches(
        fn, labels=["hop_a", "hop_b", "mid"], relevant={"x", "n"}
    )


# ----------------------------------------------------------------------
# differential: arena-indexed temp-node insertion vs the object walk
# ----------------------------------------------------------------------

def _shadow_graph(graph):
    """Name-level clone: same nodes and edges, fresh ids.  The object
    walk in ``_add_temp_nodes`` operates purely on names, so a clone with
    remapped ids is a valid substrate for the shadow run."""
    from repro.graph.interference import InterferenceGraph

    g = InterferenceGraph()
    for node in graph.nodes():
        g.add_node(node)
    for a, b in graph.edges():
        g.add_edge(a, b)
    return g


def _edge_sets(graph):
    return {n: sorted(graph.neighbors(n)) for n in graph.nodes()}


def _allocate_with_temp_node_differential(fn, registers):
    """Run the hierarchical allocator with ``_add_temp_nodes`` replaced
    by a shim that executes BOTH paths -- the arena-indexed one on the
    real graph, the per-instruction object walk on a shadow clone -- and
    asserts they add the same temps with identical edge sets and leave
    the same per-uid peer index behind.  Returns how many calls actually
    created temps."""
    from repro.core import HierarchicalAllocator, HierarchicalConfig
    from repro.core import tilecolor
    from repro.machine.target import Machine
    from repro.pipeline import prepare

    real = tilecolor._add_temp_nodes
    productive_calls = [0]

    def differential(ctx, own_labels, graph, new_vars, all_spilled,
                     temps_by_uid):
        shadow = _shadow_graph(graph)
        shadow_uid = {
            uid: (list(u), list(d)) for uid, (u, d) in temps_by_uid.items()
        }
        arena = ctx.arena
        added = real(
            ctx, own_labels, graph, new_vars, all_spilled, temps_by_uid
        )
        if arena is not None and not (
            arena.fn is not ctx.fn or arena.retired
        ):
            # Force the object fallback for the shadow run.
            ctx.arena = None
            try:
                shadow_added = real(
                    ctx, own_labels, shadow, new_vars, all_spilled,
                    shadow_uid,
                )
            finally:
                ctx.arena = arena
            assert shadow_added == added
            assert sorted(shadow.nodes()) == sorted(graph.nodes())
            assert _edge_sets(shadow) == _edge_sets(graph)
            assert shadow_uid == temps_by_uid
            if added:
                productive_calls[0] += 1
        return added

    tilecolor._add_temp_nodes = differential
    try:
        outcome = HierarchicalAllocator(HierarchicalConfig()).allocate(
            prepare(fn), Machine.simple(registers)
        )
    finally:
        tilecolor._add_temp_nodes = real
    return outcome, productive_calls[0]


@given(seed=SEEDS)
@COMMON
def test_arena_temp_nodes_match_object_walk(seed):
    """Node-for-node: for every ``_add_temp_nodes`` call during a real
    allocation, the arena-indexed path and the per-instruction object
    walk produce the same temp nodes, the same conflict edge sets, and
    the same peer index."""
    fn = random_program(seed)
    _allocate_with_temp_node_differential(fn, registers=3)


def test_arena_temp_node_differential_is_exercised():
    """The differential above is only as strong as its coverage: under
    register pressure the shim must actually see productive calls (temps
    created through both paths)."""
    productive = 0
    for seed in range(20):
        _, calls = _allocate_with_temp_node_differential(
            random_program(seed), registers=2
        )
        productive += calls
    assert productive > 0


# ----------------------------------------------------------------------
# tiny-function fast path: list CSR (worklist) vs numpy CSR (vectorized)
# ----------------------------------------------------------------------

def test_small_function_list_csr_matches_vectorized(monkeypatch):
    """Functions below ``VECTOR_LIVENESS_MIN_BLOCKS`` keep plain-list CSR
    and solve liveness with the scalar worklist; forcing the threshold to
    1 builds numpy CSR and runs the vectorized sweep.  Same fixed point
    either way."""
    import pytest

    from repro.perf import arena as arena_mod

    if arena_mod._np is None:
        pytest.skip("numpy unavailable")
    for seed in (0, 7, 23, 91):
        fn = random_program(seed)
        assert len(fn.blocks) < arena_mod.VECTOR_LIVENESS_MIN_BLOCKS

        plain = build_arena(fn)
        assert isinstance(plain.succ_indptr, list)
        plain.compute_liveness()

        monkeypatch.setattr(arena_mod, "VECTOR_LIVENESS_MIN_BLOCKS", 1)
        vec = build_arena(fn)
        assert not isinstance(vec.succ_indptr, list)
        vec.compute_liveness()
        monkeypatch.undo()

        assert plain.live_in == vec.live_in
        assert plain.live_out == vec.live_out
