"""Per-tile content-addressed memoization (``repro.core.incremental``).

The contract under test: with a :class:`TileCacheStore` attached, a warm
re-allocation is *bit-identical* to a cold one -- on the unedited
function (full reuse), on an edited function (clean subtrees replayed
from the store, dirty chain recomputed), and on functions that spill
(the arena snapshot a fingerprint hashes is pre-rewrite, so a tile that
previously inserted spill code must never serve a stale entry).  The
reuse counters are part of the contract: they are how CI proves the
cache is actually hitting rather than silently recomputing.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness
from repro.batch.serialize import (
    FORMAT_VERSION,
    record_from_dict,
    record_to_dict,
)
from repro.batch.worker import compute_record
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.incremental import (
    TileCacheStore,
    tile_invalidation_key,
)
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.perf.arena import FunctionArena
from repro.pipeline import prepare
from repro.workloads.generators import random_program
from repro.workloads.kernels import sequential_loops

MACHINE = Machine.simple(8)
SMALL_MACHINE = Machine.simple(4)


def _const_sites(fn):
    """All (label, index) positions of integer CONST instructions."""
    return [
        (block.label, i)
        for block in fn
        for i, instr in enumerate(block.instrs)
        if instr.op is Opcode.CONST and isinstance(instr.imm, int)
    ]


def _bump(fn, site):
    label, index = site
    fn.block(label).instrs[index].imm += 1


def _swap_last_mul(fn):
    """Single-instruction edit deep in the tile tree: turn the last MUL
    (loop bodies have them; entry does not) into an ADD.  Semantics
    change, but both sides of every comparison see the same edit."""
    sites = [
        (block.label, i)
        for block in fn
        for i, instr in enumerate(block.instrs)
        if instr.op is Opcode.MUL
    ]
    label, index = sites[-1]
    fn.block(label).instrs[index].op = Opcode.ADD
    return label


def _allocate(fn, store=None, config=None, machine=MACHINE):
    allocator = HierarchicalAllocator(
        config or HierarchicalConfig(), tile_store=store
    )
    outcome = allocator.allocate(fn.clone(), machine)
    return outcome, allocator


def _text(outcome):
    from repro.ir.printer import format_function

    return format_function(outcome.fn)


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------
class TestTileCacheStore:
    def test_lru_eviction(self):
        store = TileCacheStore(capacity=2)
        store.put(("p1", "a"), 1)
        store.put(("p1", "b"), 2)
        assert store.get(("p1", "a")) == 1  # refresh a
        store.put(("p1", "c"), 3)  # evicts b
        assert store.get(("p1", "b")) is None
        assert store.get(("p1", "a")) == 1
        assert store.get(("p1", "c")) == 3
        assert len(store) == 2
        assert store.stats.evictions == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 3

    def test_clear(self):
        store = TileCacheStore(capacity=8)
        store.put(("p1", "a"), 1)
        store.clear()
        assert len(store) == 0
        assert store.get(("p1", "a")) is None

    def test_invalidation_key_differs_by_config_and_machine(self):
        base = tile_invalidation_key(HierarchicalConfig(), Machine.simple(8))
        other_cfg = tile_invalidation_key(
            HierarchicalConfig(demotion=False), Machine.simple(8)
        )
        other_machine = tile_invalidation_key(
            HierarchicalConfig(), Machine.simple(6)
        )
        assert base != other_cfg
        assert base != other_machine


# ----------------------------------------------------------------------
# warm-replay identity
# ----------------------------------------------------------------------
class TestWarmReplay:
    def test_unedited_replay_is_full_reuse(self):
        fn = prepare(sequential_loops(12))
        store = TileCacheStore()
        cold, _ = _allocate(fn, store)
        warm, allocator = _allocate(fn, store)
        counters = allocator.last_tile_cache
        assert counters["tile_misses"] == 0
        assert counters["tile_hits"] > 0
        assert counters["subtrees_reused"] == 1  # the whole tree, at root
        assert _text(warm) == _text(cold)
        assert warm.stats.spilled_vars == cold.stats.spilled_vars

    def test_edited_function_reuses_clean_subtrees(self):
        base = prepare(sequential_loops(12))
        edited_fn = sequential_loops(12)
        # Edit inside the last loop body: every other loop subtree is a
        # clean sibling and must come from the store.
        _swap_last_mul(edited_fn)
        edited = prepare(edited_fn)

        store = TileCacheStore()
        _allocate(base, store)
        warm, allocator = _allocate(edited, store)
        counters = allocator.last_tile_cache
        # 12 loop subtrees; only the edited one (plus the root chain) is
        # dirty, so at least 11 clean sibling subtrees replay.
        assert counters["subtrees_reused"] >= 11
        assert counters["tile_hits"] >= 11
        assert counters["tile_misses"] >= 1  # the dirty chain recomputed

    def test_edited_output_matches_fresh_allocation(self):
        base = prepare(sequential_loops(12))
        edited_fn = sequential_loops(12)
        _swap_last_mul(edited_fn)
        edited = prepare(edited_fn)

        store = TileCacheStore()
        _allocate(base, store)
        warm, _ = _allocate(edited, store)
        fresh, _ = _allocate(edited, store=None)
        assert _text(warm) == _text(fresh)
        assert warm.stats.spilled_vars == fresh.stats.spilled_vars

    def test_stats_graph_counts_survive_phase2_replay(self):
        """A warm run reports the same graph-size stats as a cold one
        even though its phase-2 overlays never touched the live graphs."""
        fn = prepare(sequential_loops(8))
        store = TileCacheStore()
        cold, _ = _allocate(fn, store)
        warm, _ = _allocate(fn, store)
        assert warm.stats.max_graph_nodes == cold.stats.max_graph_nodes
        assert warm.stats.max_graph_edges == cold.stats.max_graph_edges

    def test_cross_function_sharing(self):
        """Content addressing is function-agnostic: two functions with an
        identical tile share entries (here: the identical function under
        a different name still hits)."""
        a = prepare(sequential_loops(6))
        b = prepare(sequential_loops(6))
        b.name = "other_name"
        store = TileCacheStore()
        _allocate(a, store)
        _, allocator = _allocate(b, store)
        assert allocator.last_tile_cache["tile_misses"] == 0


# ----------------------------------------------------------------------
# spill interactions (the arena-retirement audit)
# ----------------------------------------------------------------------
class TestSpilledTiles:
    def _spilling_setup(self):
        fn = prepare(random_program(
            seed=11, max_blocks=120, max_vars=24, max_depth=5
        ))
        outcome, allocator = _allocate(fn, machine=SMALL_MACHINE)
        assert outcome.stats.spilled_vars, "setup must spill"
        return fn, allocator

    def test_edit_in_previously_spilled_tile(self):
        """Regression: an edit landing in a tile whose previous
        allocation inserted spill code must recompute that tile, never
        serve the stale pre-edit entry."""
        fn, probe = self._spilling_setup()
        # Find a non-root tile that spilled real variables and a CONST in
        # one of its own blocks to edit.
        ctx, allocations = probe.last_context, probe.last_allocations
        site = None
        for tile in ctx.tree.postorder():
            if tile.parent is None:
                continue
            alloc = allocations[tile.tid]
            if not any(
                not v.startswith(("ts:", "tmp:")) for v in alloc.spilled
            ):
                continue
            own = tile.own_blocks()
            candidates = [s for s in _const_sites(fn) if s[0] in own]
            if candidates:
                site = candidates[0]
                break
        if site is None:
            pytest.skip("no editable spilled tile in this workload")

        edited = fn.clone()
        _bump(edited, site)

        store = TileCacheStore()
        _allocate(fn, store, machine=SMALL_MACHINE)
        warm, allocator = _allocate(edited, store, machine=SMALL_MACHINE)
        fresh, _ = _allocate(edited, machine=SMALL_MACHINE)
        assert _text(warm) == _text(fresh)
        assert warm.stats.spilled_vars == fresh.stats.spilled_vars
        assert allocator.last_tile_cache["tile_misses"] >= 1

    def test_spilling_function_unedited_replay(self):
        """Full warm replay of a spilling function: the spill rewrite
        runs fresh both times and must come out identical."""
        fn, _ = self._spilling_setup()
        store = TileCacheStore()
        cold, _ = _allocate(fn, store, machine=SMALL_MACHINE)
        warm, allocator = _allocate(fn, store, machine=SMALL_MACHINE)
        assert allocator.last_tile_cache["tile_misses"] == 0
        assert _text(warm) == _text(cold)

    def test_retired_arena_refuses_block_digest(self):
        """Fingerprints hash the pre-rewrite snapshot; once the rewrite
        retires the arena, serving a digest would hash stale text."""
        fn = prepare(sequential_loops(3))
        liveness = compute_liveness(fn)
        arena = FunctionArena(fn, liveness.index)
        assert arena.block_digest(0)  # fine while live
        arena.retire()
        with pytest.raises(RuntimeError):
            arena.block_digest(0)


# ----------------------------------------------------------------------
# batch plumbing
# ----------------------------------------------------------------------
class TestBatchPlumbing:
    def test_record_round_trips_tile_fingerprints(self):
        fn = prepare(sequential_loops(4))
        store = TileCacheStore()
        record, _, counters = compute_record(
            "f", fn, HierarchicalConfig(), MACHINE, simulate=False,
            tile_store=store,
        )
        assert record.version == FORMAT_VERSION == 3
        assert record.tile_fingerprints
        assert counters["tile_misses"] > 0
        back = record_from_dict(record_to_dict(record))
        assert back == record
        assert back.tile_fingerprints == record.tile_fingerprints

    def test_records_identical_with_and_without_store(self):
        fn = prepare(sequential_loops(4))
        plain, _, no_counters = compute_record(
            "f", fn, HierarchicalConfig(), MACHINE, simulate=False,
        )
        stored, _, _ = compute_record(
            "f", fn, HierarchicalConfig(), MACHINE, simulate=False,
            tile_store=TileCacheStore(),
        )
        assert no_counters is None
        assert plain.allocated_sha256 == stored.allocated_sha256
        assert plain.spilled == stored.spilled
        assert plain.bindings == stored.bindings
        # tile_fingerprints are observability-only and differ by design
        # (only store-attached runs compute them).
        assert plain.tile_fingerprints == ()

    def test_engine_counters_inline(self):
        from repro.batch import BatchConfig, BatchEngine, synthetic_module

        workloads = synthetic_module(4)
        batch = BatchConfig(
            batch_workers=0, cache_policy="off", tile_cache=True
        )
        with BatchEngine(batch=batch) as engine:
            engine.allocate_module(workloads)
            first = engine.stats.tile_misses
            assert first > 0
            assert engine.stats.tile_hits == 0
            engine.allocate_module(workloads)
            # cache_policy="off" recomputes every function; the second
            # pass must be pure tile-store replay.
            assert engine.stats.tile_hits == first
            assert engine.stats.tile_misses == first
            assert engine.stats.subtrees_reused >= len(workloads)
            stats = engine.stats.as_dict()
            assert {"tile_hits", "tile_misses", "subtrees_reused"} <= set(
                stats
            )

    def test_engine_counters_pooled(self):
        from repro.batch import BatchConfig, BatchEngine, synthetic_module

        workloads = synthetic_module(3)
        batch = BatchConfig(
            batch_workers=1, cache_policy="off", tile_cache=True
        )
        with BatchEngine(batch=batch) as engine:
            engine.allocate_module(workloads)
            first = engine.stats.tile_misses
            assert first > 0
            engine.allocate_module(workloads)
            # One worker owns one store: the second pass replays from it
            # and the counters travel back through the pool plumbing.
            assert engine.stats.tile_hits == first

    def test_tile_cache_off_reports_no_counters(self):
        from repro.batch import BatchConfig, BatchEngine, synthetic_module

        workloads = synthetic_module(2)
        with BatchEngine(batch=BatchConfig(batch_workers=0)) as engine:
            engine.allocate_module(workloads)
            assert engine.stats.tile_hits == 0
            assert engine.stats.tile_misses == 0


# ----------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------
def test_tile_cache_hit_events():
    from repro.trace import AllocationTracer, MemorySink, TileCacheHit

    fn = prepare(sequential_loops(6))
    store = TileCacheStore()
    _allocate(fn, store)

    sink = MemorySink()
    tracer = AllocationTracer([sink])
    allocator = HierarchicalAllocator(
        HierarchicalConfig(), tracer=tracer, tile_store=store
    )
    allocator.allocate(fn.clone(), MACHINE)
    hits = [e for e in sink.events if isinstance(e, TileCacheHit)]
    assert hits, "full warm replay must emit TileCacheHit events"
    assert {e.phase for e in hits} == {"phase1", "phase2"}
    assert all(e.fingerprint for e in hits)


# ----------------------------------------------------------------------
# hypothesis: random single-block edit replay
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pick=st.integers(min_value=0, max_value=10**6),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_edit_replay_matches_full(seed, pick):
    """For arbitrary generated programs and an arbitrary single-block
    edit: warm incremental re-allocation == fresh full allocation, and
    the identity replay (same text again) is 100% reuse."""
    fn = prepare(random_program(seed))
    sites = _const_sites(fn)
    assume(sites)

    store = TileCacheStore()
    cold, _ = _allocate(fn, store)

    # Identity replay: everything hits, output identical.
    replay, allocator = _allocate(fn, store)
    counters = allocator.last_tile_cache
    assert counters["tile_misses"] == 0
    assert _text(replay) == _text(cold)

    # Edited replay: bit-identical to a fresh allocation of the edit.
    edited = fn.clone()
    _bump(edited, sites[pick % len(sites)])
    warm, allocator = _allocate(edited, store)
    fresh, _ = _allocate(edited)
    assert _text(warm) == _text(fresh)
    assert warm.stats.spilled_vars == fresh.stats.spilled_vars
    counters = allocator.last_tile_cache
    total = counters["tile_hits"] + counters["tile_misses"]
    assert total == warm.stats.extra["tile_count"]
    assert counters["tile_misses"] >= 1
    if counters["tile_hits"]:
        assert counters["subtrees_reused"] >= 1
