"""Tests for the shared function context and the workload suite itself."""

import pytest

from repro.analysis.frequency import estimate_frequencies
from repro.core.config import HierarchicalConfig
from repro.core.info import build_context
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.callsites import make_callee, make_caller
from repro.workloads.figure1 import figure1
from repro.workloads.generators import random_program, random_workload
from repro.workloads.kernels import (
    all_kernel_workloads,
    matmul,
    sequential_loops,
)


def ctx_for(fn, registers=4):
    build = build_tile_tree_detailed(fn)
    return build_context(
        build.tree.fn, Machine.simple(registers), build.tree, build.fixup, None
    )


class TestFunctionContext:
    def test_ref_and_def_blocks(self):
        ctx = ctx_for(figure1())
        assert "B2" in ctx.ref_blocks["g1"]
        assert "B4" in ctx.ref_blocks["g1"]
        assert "B2" in ctx.def_blocks["g1"]
        assert "B4" not in ctx.def_blocks["t1"]

    def test_is_local_matches_paper_definition(self):
        ctx = ctx_for(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        assert ctx.is_local(loop1, "t1")
        assert not ctx.is_local(loop1, "g1")   # live across the boundary
        assert not ctx.is_local(loop1, "g2")   # referenced outside

    def test_defined_in_subtree(self):
        ctx = ctx_for(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        assert ctx.defined_in_subtree(loop1, "g1")
        assert not ctx.defined_in_subtree(loop1, "g2")

    def test_block_freq_for_fixup_blocks(self):
        """Blocks inserted by fix-up get their original edge's frequency
        even under a profile that predates them."""
        from repro.analysis.frequency import frequencies_from_profile

        fn = random_program(4, max_blocks=40, max_depth=4, break_prob=0.5)
        run = simulate(fn.clone(), args={"n": 5}, arrays={"A": [1] * 8})
        freq = frequencies_from_profile(fn, run.profile)
        build = build_tile_tree_detailed(fn)
        ctx = build_context(
            build.tree.fn, Machine.simple(4), build.tree, build.fixup, freq
        )
        for label in build.fixup.inserted_labels:
            if label in ctx.fn.blocks:
                # Must not raise and must be a finite number.
                value = ctx.block_freq(label)
                assert value >= 0.0

    def test_boundary_live_sets(self):
        ctx = ctx_for(figure1())
        loop1 = next(
            t for t in ctx.tree.preorder()
            if t.kind == "loop" and t.header == "B2"
        )
        union = set()
        for live in ctx.boundary_live_sets(loop1):
            union |= live
        assert "g2" in union  # live through the loop
        assert "t1" not in union


class TestWorkloadSuite:
    def test_all_kernels_execute(self):
        for workload in all_kernel_workloads(6):
            result = simulate(
                workload.fn, args=workload.args, arrays=workload.arrays
            )
            assert isinstance(result.returned, tuple), workload.label()

    def test_kernel_names_unique(self):
        names = [w.label() for w in all_kernel_workloads(4)]
        assert len(names) == len(set(names))

    def test_matmul_is_correct(self):
        import numpy

        n = 3
        a = list(range(1, n * n + 1))
        bm = list(range(2, n * n + 2))
        result = simulate(matmul(), args={"n": n}, arrays={"A": a, "B": bm})
        produced = result.arrays["C"]
        expect = (
            numpy.array(a).reshape(n, n) @ numpy.array(bm).reshape(n, n)
        )
        for i in range(n):
            for j in range(n):
                assert produced[i * n + j] == expect[i, j]

    def test_sequential_loops_shape(self):
        fn = sequential_loops(5)
        from repro.analysis.loops import build_loop_forest

        forest = build_loop_forest(fn)
        assert len(forest) == 5
        result = simulate(fn, args={"n": 2}, arrays={"A": [1, 2, 3]})
        assert result.returned[0] > 0

    def test_callsites_pair(self):
        callee = make_callee()
        assert simulate(callee, args={"x": 7, "lim": 5}).returned == (5,)
        assert simulate(callee, args={"x": 3, "lim": 5}).returned == (3,)
        caller = make_caller(2)
        assert sum(
            1 for _, i in caller.instructions() if i.op.value == "call"
        ) == 2


class TestGeneratorProperties:
    def test_deterministic(self):
        a = random_program(11)
        b = random_program(11)
        from repro.ir import format_function

        assert format_function(a) == format_function(b)

    def test_break_prob_changes_structure(self):
        """Some seed in a small sample must place a break (a conditional
        nested in a loop is needed, so not every seed qualifies)."""
        from repro.ir import format_function

        differs = 0
        for seed in range(8):
            plain = random_program(
                seed, max_blocks=40, max_depth=4, break_prob=0.0
            )
            breaky = random_program(
                seed, max_blocks=40, max_depth=4, break_prob=0.9
            )
            if format_function(plain) != format_function(breaky):
                differs += 1
        assert differs > 0

    def test_break_programs_terminate(self):
        for seed in range(10):
            fn = random_program(seed, max_depth=4, break_prob=0.6)
            simulate(fn, args={"n": 4}, arrays={"A": [2] * 8})

    def test_workload_runs_its_own_function(self):
        w = random_workload(21)
        result = simulate(w.fn, args=w.args, arrays=w.arrays)
        assert isinstance(result.returned, tuple)

    def test_frequencies_defined_for_all_blocks(self):
        fn = random_program(5, break_prob=0.3)
        freq = estimate_frequencies(fn)
        for label in fn.rpo():
            assert freq.block_freq[label] >= 0.0
