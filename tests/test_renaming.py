"""Tests for live-range renaming (web construction)."""

from repro.analysis.renaming import rename_webs
from repro.ir.builder import FunctionBuilder
from repro.machine.simulator import simulate
from repro.workloads.generators import random_workload
from repro.workloads.kernels import dot


class TestDisjointRanges:
    def test_two_webs_split(self):
        """x has two unrelated live ranges; they become distinct names."""
        b = FunctionBuilder("f", params=["a"])
        b.block("one")
        b.const("x", 1)
        b.add("u", "x", "a")     # end of first x range
        b.const("x", 2)          # unrelated second range
        b.add("v", "x", "u")
        b.ret("v")
        fn = b.finish()
        renamed, reverse = rename_webs(fn)
        instrs = renamed.blocks["one"].instrs
        first_def = instrs[0].defs[0]
        second_def = instrs[2].defs[0]
        assert first_def != second_def
        assert reverse[first_def] == "x"
        assert reverse[second_def] == "x"
        # Uses follow their reaching definitions.
        assert instrs[1].uses[0] == first_def
        assert instrs[3].uses[0] == second_def

    def test_connected_ranges_stay_merged(self, loop_fn):
        """A loop variable's def and redefinition share uses: one web."""
        renamed, _ = rename_webs(loop_fn)
        names = {
            v for v in renamed.variables() if v == "i" or v.startswith("i%")
        }
        assert names == {"i"}

    def test_diamond_merge(self):
        """Defs in both branches reaching a common use form one web."""
        b = FunctionBuilder("f", params=["p"])
        b.block("entry")
        b.const("ten", 10)
        b.cmplt("c", "p", "ten")
        b.cbr("c", "t", "e")
        b.block("t")
        b.const("x", 1)
        b.br("j")
        b.block("e")
        b.const("x", 2)
        b.br("j")
        b.block("j")
        b.add("r", "x", "p")
        b.ret("r")
        fn = b.finish()
        renamed, _ = rename_webs(fn)
        then_def = renamed.blocks["t"].instrs[0].defs[0]
        else_def = renamed.blocks["e"].instrs[0].defs[0]
        assert then_def == else_def


class TestParams:
    def test_param_web_keeps_name(self):
        b = FunctionBuilder("f", params=["n"])
        b.block("one")
        b.add("u", "n", "n")     # uses the incoming n
        b.const("n", 5)          # unrelated redefinition
        b.add("v", "n", "u")
        b.ret("v")
        fn = b.finish()
        renamed, _ = rename_webs(fn)
        assert renamed.params == ["n"]
        assert renamed.blocks["one"].instrs[0].uses == ("n", "n")
        assert renamed.blocks["one"].instrs[1].defs[0] != "n"


class TestSemanticsPreserved:
    def test_kernel(self):
        fn = dot()
        renamed, _ = rename_webs(fn)
        arrays = {"A": [2, 4, 6], "B": [1, 3, 5]}
        a = simulate(fn, args={"n": 3}, arrays=arrays)
        b = simulate(renamed, args={"n": 3}, arrays=arrays)
        assert a.returned == b.returned

    def test_random_programs(self):
        for seed in range(12):
            w = random_workload(seed)
            renamed, _ = rename_webs(w.fn)
            a = simulate(w.fn, args=w.args, arrays=w.arrays)
            b = simulate(renamed, args=dict(w.args), arrays=w.arrays)
            assert a.returned == b.returned, f"seed {seed}"

    def test_idempotent(self):
        fn = dot()
        once, _ = rename_webs(fn)
        twice, _ = rename_webs(once)
        assert sorted(once.variables()) == sorted(twice.variables())
