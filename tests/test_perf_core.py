"""Tests for the performance core (repro.perf) and its consumers.

Covers the interning layer and bitset helpers, the stage timers, the
CFG-query caches and their invalidation, equality of the bitset analyses
with the preserved string-set reference implementations on random
structured programs, determinism of the dependency-driven parallel
scheduler -- both within one process and across processes with different
``PYTHONHASHSEED`` values -- and the duplicated-CBR-arm spill-placement
regression.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness
from repro.analysis.reference import reference_interference, reference_liveness
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.allocator import _run_phase1_parallel, _run_phase2_parallel
from repro.graph.interference import InterferenceGraph, build_interference
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.perf import StageTimers, VarIndex, bit_count, iter_bits
from repro.pipeline import compile_function
from repro.workloads.generators import random_program, random_workload

SEEDS = st.integers(min_value=0, max_value=10_000)
COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVarIndex:
    def test_intern_assigns_dense_stable_ids(self):
        idx = VarIndex()
        assert idx.intern("a") == 0
        assert idx.intern("b") == 1
        assert idx.intern("a") == 0  # stable on re-intern
        assert len(idx) == 2
        assert idx.names() == ["a", "b"]

    def test_roundtrip_mask_frozenset(self):
        idx = VarIndex(["x", "y", "z"])
        mask = idx.mask_of(["z", "x"])
        assert idx.frozenset_of(mask) == frozenset({"x", "z"})
        assert idx.members(mask) == ["x", "z"]  # id order

    def test_mask_of_interns_new_names(self):
        idx = VarIndex()
        mask = idx.mask_of(["p", "q"])
        assert bit_count(mask) == 2
        assert "p" in idx and "q" in idx

    def test_mask_of_known_skips_unknown(self):
        idx = VarIndex(["a"])
        mask = idx.mask_of_known(["a", "nope"])
        assert idx.frozenset_of(mask) == frozenset({"a"})
        assert "nope" not in idx

    def test_growth_keeps_old_bitsets_valid(self):
        idx = VarIndex(["a", "b"])
        old = idx.mask_of(["a", "b"])
        idx.intern("c")
        assert idx.frozenset_of(old) == frozenset({"a", "b"})

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]


class TestStageTimers:
    def test_accumulates_per_stage(self):
        timers = StageTimers()
        with timers.stage("a"):
            pass
        with timers.stage("a"):
            pass
        timers.add("b", 0.5)
        times = timers.as_dict()
        assert set(times) == {"a", "b"}
        assert times["a"] >= 0.0
        assert times["b"] == pytest.approx(0.5)
        assert timers.total() == pytest.approx(sum(times.values()))

    def test_stage_records_on_exception(self):
        timers = StageTimers()
        with pytest.raises(RuntimeError):
            with timers.stage("boom"):
                raise RuntimeError("x")
        assert "boom" in timers.as_dict()


class TestFunctionCfgCaches:
    def _fn(self):
        b = FunctionBuilder("f", params=["n"])
        b.block("one")
        b.const("x", 1)
        b.br("two")
        b.block("two")
        b.add("y", "x", "n")
        b.ret("y")
        return b.finish()

    def test_queries_are_cached(self):
        fn = self._fn()
        assert fn.rpo() is fn.rpo()
        assert fn.predecessors_map() is fn.predecessors_map()
        assert fn.edges() is fn.edges()

    def test_mutation_invalidates(self):
        fn = self._fn()
        before_edges = fn.edges()
        version = fn.cfg_version
        fn.insert_block_on_edge("one", "two")
        assert fn.cfg_version > version
        assert fn.edges() is not before_edges
        assert ("one", "two") not in fn.edges()

    def test_allocators_see_fresh_cfg_after_invalidate(self):
        fn = self._fn()
        fn.rpo()
        new = fn.insert_block_on_edge("one", "two")
        assert new.label in fn.rpo()


class TestInsertBlockAllOccurrences:
    def _cbr_same_target(self):
        b = FunctionBuilder("g", params=["c"])
        b.block("top")
        b.cbr("c", "join", "join")
        b.block("join")
        b.ret("c")
        return b.finish()

    def test_default_redirects_first_arm_only(self):
        fn = self._cbr_same_target()
        new = fn.insert_block_on_edge("top", "join")
        assert fn.blocks["top"].succ_labels == [new.label, "join"]

    def test_all_occurrences_redirects_both_arms(self):
        fn = self._cbr_same_target()
        new = fn.insert_block_on_edge("top", "join", all_occurrences=True)
        assert fn.blocks["top"].succ_labels == [new.label, new.label]


class TestSubgraph:
    def test_induced_subgraph(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        g.add_node("e")
        sub = g.subgraph({"b", "c", "e"})
        assert sorted(sub.nodes()) == ["b", "c", "e"]
        assert sub.interferes("b", "c")
        assert not sub.interferes("b", "a")
        assert sub.degree("e") == 0

    def test_subgraph_ignores_absent_nodes(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        sub = g.subgraph({"a", "zz"})
        assert sub.nodes() == ["a"]

    def test_subgraph_does_not_alias_adjacency(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        sub = g.subgraph({"a", "b"})
        sub.remove_node("a")
        assert g.interferes("a", "b")


@given(seed=SEEDS)
@COMMON
def test_bitset_liveness_equals_reference(seed):
    """The bitset dataflow produces exactly the frozensets of the seed's
    string-set implementation, block- and instruction-level."""
    fn = random_program(seed)
    fast = compute_liveness(fn)
    ref = reference_liveness(fn)
    assert fast.live_in == ref.live_in
    assert fast.live_out == ref.live_out
    for label in fn.blocks:
        assert fast.instr_live_out(label) == ref.instr_live_out(label)
        assert fast.instr_live_in(label) == ref.instr_live_in(label)


@given(seed=SEEDS)
@COMMON
def test_bitset_interference_equals_reference(seed):
    fn = random_program(seed)
    fast = build_interference(fn, compute_liveness(fn))
    ref = reference_interference(fn, reference_liveness(fn))
    assert sorted(fast.nodes()) == sorted(ref.nodes())
    assert sorted(fast.edges()) == sorted(ref.edges())


@given(seed=SEEDS)
@COMMON
def test_bitset_interference_equals_reference_restricted(seed):
    """Equality must also hold for tile-style restricted construction
    (subset of blocks, relevant-variable filter)."""
    fn = random_program(seed)
    labels = sorted(fn.blocks)[: max(1, len(fn.blocks) // 2)]
    fast_lv = compute_liveness(fn)
    ref_lv = reference_liveness(fn)
    relevant = set()
    for label in labels:
        relevant |= fn.blocks[label].variables()
    relevant = set(sorted(relevant)[: max(1, len(relevant) // 2)])
    fast = build_interference(fn, fast_lv, labels=labels, relevant=relevant)
    ref = reference_interference(fn, ref_lv, labels=labels, relevant=relevant)
    assert sorted(fast.nodes()) == sorted(ref.nodes())
    assert sorted(fast.edges()) == sorted(ref.edges())


def _normalized_phys(tree, fn, allocations):
    """Per-tile physical locations keyed by postorder position, with the
    process-global counters inside summary/temp node names (tile ids,
    instruction uids) rewritten to build-local positions so results from
    separate builds compare equal."""
    import re

    tidmap = {tile.tid: pos for pos, tile in enumerate(tree.postorder())}
    uidmap = {}
    for block in fn.blocks.values():
        for instr in block.instrs:
            uidmap.setdefault(instr.uid, len(uidmap))

    def norm(name):
        if name.startswith("ts:"):
            _, tid, color = name.split(":", 2)
            color = re.sub(
                r"^t(\d+)\.", lambda m: f"t{tidmap[int(m.group(1))]}.", color
            )
            return f"ts:{tidmap[int(tid)]}:{color}"
        if name.startswith("tmp:"):
            _, uid, rest = name.split(":", 2)
            return f"tmp:{uidmap[int(uid)]}:{rest}"
        return name

    return {
        tidmap[tid]: dict(
            sorted((norm(var), loc) for var, loc in alloc.phys.items())
        )
        for tid, alloc in allocations.items()
    }


def _allocate_text(fn, config, registers=4):
    allocator = HierarchicalAllocator(config)
    out = allocator.allocate(fn, Machine.simple(registers))
    phys = _normalized_phys(
        allocator.last_context.tree,
        allocator.last_context.fn,
        allocator.last_allocations,
    )
    return format_function(out.allocated_fn), phys


@given(seed=SEEDS, registers=st.sampled_from([2, 3, 4, 6]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_parallel_allocation_identical_to_sequential(seed, registers):
    """The dependency-driven scheduler must reproduce the sequential
    output byte for byte: same rewritten program, same per-tile physical
    locations."""
    text_seq, phys_seq = _allocate_text(
        random_program(seed), HierarchicalConfig(), registers
    )
    text_par, phys_par = _allocate_text(
        random_program(seed),
        HierarchicalConfig(
            parallel=True, parallel_workers=3, parallel_min_tiles=1
        ),
        registers,
    )
    assert text_seq == text_par
    assert phys_seq == phys_par


@given(seed=SEEDS)
@COMMON
def test_level_barrier_driver_matches_scheduler(seed):
    """The retained level-barrier driver stays equivalent (it is the bench
    baseline for the dependency-driven scheduler)."""
    from repro.core.info import build_context
    from repro.tiles.construction import build_tile_tree_detailed

    fn = random_program(seed)
    config = HierarchicalConfig()

    work_a = fn.clone()
    build_a = build_tile_tree_detailed(work_a)
    ctx_a = build_context(work_a, Machine.simple(4), build_a.tree,
                          build_a.fixup, None)
    alloc_a = _run_phase1_parallel(ctx_a, config)
    _run_phase2_parallel(ctx_a, config, alloc_a)

    from repro.core.schedule import run_phase1_scheduled, run_phase2_scheduled

    work_b = fn.clone()
    build_b = build_tile_tree_detailed(work_b)
    ctx_b = build_context(work_b, Machine.simple(4), build_b.tree,
                          build_b.fixup, None)
    alloc_b = run_phase1_scheduled(ctx_b, config)
    run_phase2_scheduled(ctx_b, config, alloc_b)

    phys_a = _normalized_phys(ctx_a.tree, ctx_a.fn, alloc_a)
    phys_b = _normalized_phys(ctx_b.tree, ctx_b.fn, alloc_b)
    assert phys_a == phys_b


_CROSS_PROCESS_SCRIPT = """
import hashlib, json, sys
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.workloads.generators import random_program

seed, registers, workers = (int(a) for a in sys.argv[1:4])
if workers == 0:
    config = HierarchicalConfig()
else:
    config = HierarchicalConfig(
        parallel=True, parallel_workers=workers, parallel_min_tiles=1
    )
out = HierarchicalAllocator(config).allocate(
    random_program(seed), Machine.simple(registers)
)
text = format_function(out.fn)
print(json.dumps({
    "sha": hashlib.sha256(text.encode()).hexdigest(),
    "spilled": sorted(out.stats.spilled_vars),
}))
"""


class TestCrossProcessDeterminism:
    """Allocation must be bit-identical across *processes*: Python salts
    string hashes per process, so any decision leaking set/dict iteration
    order diverges here even though within-process runs agree."""

    HASH_SEEDS = ("0", "1", "12345")

    @staticmethod
    def _run(program_seed, registers, workers, hash_seed):
        import repro

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        prior = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
        proc = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SCRIPT,
             str(program_seed), str(registers), str(workers)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    @pytest.mark.parametrize("program_seed,registers", [(7, 3), (501, 4)])
    def test_output_identical_across_hash_seeds_and_workers(
        self, program_seed, registers
    ):
        runs = {
            (hash_seed, workers): self._run(
                program_seed, registers, workers, hash_seed
            )
            for hash_seed in self.HASH_SEEDS
            for workers in (0, 3)
        }
        baseline = runs[(self.HASH_SEEDS[0], 0)]
        for key, run in runs.items():
            assert run == baseline, (
                f"program seed {program_seed}: (PYTHONHASHSEED={key[0]}, "
                f"workers={key[1]}) produced different allocation output"
            )


class TestDuplicatedEdgeSpillRegression:
    """Boundary spill code must intercept *every* traversal of an edge
    whose CBR arms coincide (regression: a store planned on such an edge
    previously landed on the first arm only, so the false arm reloaded
    from a never-stored slot)."""

    def test_optimized_program_seed_501_allocates(self):
        from repro.opt import optimize
        from repro.pipeline import Workload

        w = random_workload(501)
        out = optimize(w.fn)
        workload = Workload(out, w.args, w.arrays, name="opt")
        result = compile_function(
            workload, HierarchicalAllocator(), Machine.simple(3)
        )
        assert result.allocated_run.returned == result.reference_run.returned

    def test_spill_block_on_duplicated_edge_covers_both_arms(self):
        """Direct check on the rewritten CFG: after allocation under heavy
        pressure, no CBR may keep a bare arm to a block that the other arm
        reaches through a spill block carrying stores."""
        from repro.opt import optimize
        from repro.pipeline import Workload

        w = random_workload(501)
        out = optimize(w.fn)
        workload = Workload(out, w.args, w.arrays, name="opt")
        result = compile_function(
            workload, HierarchicalAllocator(), Machine.simple(3)
        )
        fn = result.fn
        for label, block in fn.blocks.items():
            succ = block.succ_labels
            if len(succ) == 2 and succ[0] != succ[1]:
                # If one arm goes through a fix-up block into X and the
                # other goes to X directly, the fix-up block must be empty
                # (otherwise one path skips mandatory boundary code).
                for a, b in ((succ[0], succ[1]), (succ[1], succ[0])):
                    via = fn.blocks[a]
                    if (
                        len(via.succ_labels) == 1
                        and via.succ_labels[0] == b
                        and a.startswith("sp.")
                    ):
                        assert not via.instrs, (
                            f"spill block {a} bypassed by {label}->{b}"
                        )
