"""Tests for linkage lowering and callee-save handling (paper section 6)."""

import pytest

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.analysis.frequency import frequencies_from_profile
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Opcode
from repro.machine.calls import (
    LinkageError,
    lower_calls,
    with_callee_save,
)
from repro.machine.rewrite import remove_self_moves
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import quick_return

MACHINE = Machine.with_linkage(6, num_callee_save=2, num_args=2)


def call_fn():
    b = FunctionBuilder("callsite", params=["x"])
    b.block("entry")
    b.const("k", 3)
    b.mul("big", "x", "k")        # live across the call
    b.call(["a"], "abs", ["x"])
    b.add("r", "a", "big")
    b.ret("r")
    return b.finish()


class TestLowerCalls:
    def test_arguments_flow_through_arg_regs(self):
        lowered = lower_calls(call_fn(), MACHINE)
        call = next(
            i for _, i in lowered.instructions() if i.op is Opcode.CALL
        )
        assert call.uses == ("R0",)
        assert call.defs == ("R0",)
        assert "R1" in call.clobbers  # caller-save, not the result reg
        assert "R4" not in call.clobbers  # callee-save survives

    def test_semantics_preserved(self):
        original = call_fn()
        lowered = lower_calls(original, MACHINE)
        a = simulate(original, args={"x": -4})
        b = simulate(lowered, args={"x": -4})
        assert a.returned == b.returned == (-8,)

    def test_too_many_args_rejected(self):
        b = FunctionBuilder("f", params=["x"])
        b.block("entry")
        b.call(["y"], "clamp", ["x", "x", "x"])
        b.ret("y")
        fn = b.finish()
        with pytest.raises(LinkageError):
            lower_calls(fn, MACHINE)

    @pytest.mark.parametrize(
        "allocator_cls", [HierarchicalAllocator, ChaitinAllocator, BriggsAllocator]
    )
    def test_allocation_across_call(self, allocator_cls):
        """A value live across the call must survive the clobbered
        caller-save registers."""
        lowered = lower_calls(call_fn(), MACHINE)
        w = Workload(lowered, args={"x": -4}, name="callsite")
        result = compile_function(w, allocator_cls(), MACHINE)
        assert result.allocated_run.returned == (-8,)


class TestWithCalleeSave:
    def test_no_callee_save_machine_is_identity(self):
        fn = call_fn()
        out = with_callee_save(fn, Machine.simple(4))
        assert len(out.blocks) == len(fn.blocks)
        assert out.params == fn.params

    def test_params_extended(self):
        out = with_callee_save(quick_return(), MACHINE)
        assert out.params == ["n", "R4", "R5"]

    def test_returns_include_restored_registers(self):
        out = with_callee_save(quick_return(), MACHINE)
        result = simulate(
            out, args={"n": 0, "R4": 7, "R5": 9}, arrays={"A": []}
        )
        assert result.returned == (0, 7, 9)

    @pytest.mark.parametrize(
        "allocator_cls", [HierarchicalAllocator, ChaitinAllocator]
    )
    def test_callee_save_contract_after_allocation(self, allocator_cls):
        out = with_callee_save(quick_return(), MACHINE)
        w = Workload(
            out, args={"n": 4, "R4": 77, "R5": 88},
            arrays={"A": [1, 2, 3, 4]}, name="qr",
        )
        result = compile_function(w, allocator_cls(), MACHINE)
        assert result.allocated_run.returned[-2:] == (77, 88)


class TestShrinkWrapping:
    """E11: 'a callee-save register is not saved until an execution path
    which actually requires the register is selected'."""

    def _profiled_freq(self, fn):
        profile = None
        for n in [0] * 9 + [5]:
            run = simulate(
                fn, args={"n": n, "R4": 1, "R5": 2},
                arrays={"A": [1, 2, 3, 4, 5]},
            )
            profile = run.profile if profile is None else profile.merge(run.profile)
        return frequencies_from_profile(fn, profile)

    def test_fast_path_free_of_callee_save_traffic(self):
        fn = with_callee_save(quick_return(), MACHINE)
        freq = self._profiled_freq(fn)
        w = Workload(
            fn, args={"n": 0, "R4": 1, "R5": 2}, arrays={"A": []}, name="fast"
        )
        hier = compile_function(
            w,
            HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
            MACHINE,
        )
        assert hier.spill_refs == 0

    def test_chaitin_pays_on_fast_path(self):
        fn = with_callee_save(quick_return(), MACHINE)
        w = Workload(
            fn, args={"n": 0, "R4": 1, "R5": 2}, arrays={"A": []}, name="fast"
        )
        chaitin = compile_function(w, ChaitinAllocator(), MACHINE)
        assert chaitin.spill_refs > 0

    def test_slow_path_still_correct(self):
        fn = with_callee_save(quick_return(), MACHINE)
        freq = self._profiled_freq(fn)
        w = Workload(
            fn, args={"n": 4, "R4": 5, "R5": 6},
            arrays={"A": [2, 2, 2, 2]}, name="slow",
        )
        result = compile_function(
            w,
            HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
            MACHINE,
        )
        assert result.allocated_run.returned == result.reference_run.returned


class TestRemoveSelfMoves:
    def test_removes_only_self_moves(self):
        b = FunctionBuilder("f", params=["x"])
        b.block("entry")
        b.emit(
            __import__("repro.ir.instructions", fromlist=["Instr"]).Instr(
                Opcode.COPY, defs=("R1",), uses=("R1",)
            )
        )
        b.copy("y", "x")
        b.ret("y")
        fn = b.finish()
        removed = remove_self_moves(fn)
        assert removed == 1
        ops = [i.op for i in fn.blocks["entry"].instrs]
        assert ops.count(Opcode.COPY) == 1
