"""Tests for function inlining (paper section 6)."""

import pytest

from repro.core import HierarchicalAllocator
from repro.ir.builder import FunctionBuilder
from repro.ir.inline import InlineError, find_call, inline_all, inline_call
from repro.ir.validate import validate_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function


from repro.workloads.callsites import make_callee, make_caller


class TestInlineCall:
    def test_structure_valid(self):
        inlined = inline_call(make_caller(), make_callee())
        validate_function(inlined)
        # No CALL remains.
        assert not any(
            i.op.value == "call" for _, i in inlined.instructions()
        )

    def test_semantics(self):
        inlined = inline_call(make_caller(), make_callee())
        result = simulate(
            inlined, args={"n": 6}, arrays={"A": [1, 9, 3, 8, 2, 7]}
        )
        # clamp at 5: 1+5+3+5+2+5
        assert result.returned == (21,)

    def test_multiple_sites(self):
        inlined = inline_all(make_caller(3), make_callee())
        validate_function(inlined)
        result = simulate(
            inlined, args={"n": 3}, arrays={"A": [9, 2, 9]}
        )
        assert result.returned == (12,)  # 5 + 2 + 5

    def test_names_renamed_apart(self):
        inlined = inline_all(make_caller(2), make_callee())
        variables = inlined.variables()
        prefixes = {v.split(".")[0] for v in variables if "." in v}
        assert len(prefixes) >= 2  # two distinct inline instances

    def test_missing_call_rejected(self):
        with pytest.raises(InlineError):
            find_call(make_callee(), "nosuch")

    def test_arity_mismatch_rejected(self):
        b = FunctionBuilder("bad", params=["n"])
        b.block("entry")
        b.call(["r"], "clampv", ["n"])  # one arg, callee takes two
        b.ret("r")
        bad = b.finish()
        with pytest.raises(InlineError):
            inline_call(bad, make_callee())

    def test_allocation_after_inline(self):
        inlined = inline_all(make_caller(2), make_callee())
        w = Workload(
            inlined, {"n": 4}, {"A": [7, 1, 9, 3]}, name="inlined"
        )
        result = compile_function(w, HierarchicalAllocator(), Machine.simple(4))
        assert result.allocated_run.returned == result.reference_run.returned

    def test_callee_locals_stay_local_to_their_tiles(self):
        """The paper's claim: 'the local variables of the inlined function
        will all be local to the function's tile'."""
        inlined = inline_call(make_caller(), make_callee())
        allocator = HierarchicalAllocator()
        w = Workload(inlined, {"n": 4}, {"A": [7, 1, 9, 3]}, name="inl")
        compile_function(w, allocator, Machine.simple(4))
        ctx = allocator.last_context
        # The callee's conditional flag (inlN.lt) must be classified local
        # to some tile strictly below the root.  (ctx.fn has been rewritten
        # to physical registers by now, so consult the per-tile records.)
        owner = None
        for tile in ctx.tree.preorder():
            alloc = allocator.last_allocations[tile.tid]
            if any(".lt" in var for var in alloc.locals_):
                owner = tile
        assert owner is not None and owner.parent is not None
