"""Unit tests for basic blocks and functions (CFG layer)."""

import pytest

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode


def _add(d, a, b):
    return Instr(Opcode.ADD, defs=(d,), uses=(a, b))


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("b", [_add("x", "a", "b"), Instr(Opcode.BR)])
        assert block.terminator is not None
        assert block.terminator.op is Opcode.BR
        assert [i.op for i in block.body] == [Opcode.ADD]

    def test_no_terminator(self):
        block = BasicBlock("b", [_add("x", "a", "b")])
        assert block.terminator is None

    def test_append_keeps_terminator_last(self):
        block = BasicBlock("b", [Instr(Opcode.BR)])
        block.append(_add("x", "a", "b"))
        assert block.instrs[-1].op is Opcode.BR
        assert block.instrs[0].op is Opcode.ADD

    def test_insert_before_terminator(self):
        block = BasicBlock("b", [_add("x", "a", "b"), Instr(Opcode.BR)])
        block.insert_before_terminator([_add("y", "x", "x")])
        assert [i.op for i in block.instrs] == [Opcode.ADD, Opcode.ADD, Opcode.BR]

    def test_insert_without_terminator_appends(self):
        block = BasicBlock("b", [_add("x", "a", "b")])
        block.insert_before_terminator([_add("y", "x", "x")])
        assert len(block.instrs) == 2

    def test_ref_count_counts_defs_and_uses(self):
        block = BasicBlock("b", [_add("x", "x", "x"), _add("y", "x", "z")])
        assert block.ref_count("x") == 4
        assert block.ref_count("z") == 1
        assert block.ref_count("missing") == 0

    def test_variable_sets(self):
        block = BasicBlock("b", [_add("x", "a", "b")])
        assert block.variables() == {"x", "a", "b"}
        assert block.defs() == {"x"}
        assert block.uses() == {"a", "b"}

    def test_is_empty(self):
        assert BasicBlock("b", []).is_empty()
        assert BasicBlock("b", [Instr(Opcode.BR)]).is_empty()
        assert not BasicBlock("b", [_add("x", "a", "b")]).is_empty()

    def test_clone_is_independent(self):
        block = BasicBlock("b", [_add("x", "a", "b")], ["next"])
        other = block.clone()
        other.instrs.append(Instr(Opcode.BR))
        other.succ_labels.append("extra")
        assert len(block.instrs) == 1
        assert block.succ_labels == ["next"]


class TestFunctionStructure:
    def _two_block_fn(self):
        fn = Function("f", params=["p"], start_label="a", stop_label="b")
        fn.add_block(BasicBlock("a", [], ["b"]))
        fn.add_block(BasicBlock("b", []))
        return fn

    def test_duplicate_label_rejected(self):
        fn = self._two_block_fn()
        with pytest.raises(ValueError):
            fn.add_block(BasicBlock("a"))

    def test_edges_and_preds(self):
        fn = self._two_block_fn()
        assert fn.edges() == [("a", "b")]
        assert fn.predecessors_map() == {"a": [], "b": ["a"]}

    def test_new_label_avoids_collisions(self):
        fn = self._two_block_fn()
        label = fn.new_label("bb")
        assert label not in fn.blocks
        fn.add_block(BasicBlock(label))
        assert fn.new_label("bb") != label

    def test_insert_block_on_edge(self):
        fn = self._two_block_fn()
        mid = fn.insert_block_on_edge("a", "b")
        assert fn.blocks["a"].succ_labels == [mid.label]
        assert fn.blocks[mid.label].succ_labels == ["b"]
        assert ("a", "b") not in fn.edges()

    def test_insert_on_missing_edge(self):
        fn = self._two_block_fn()
        with pytest.raises(ValueError):
            fn.insert_block_on_edge("b", "a")

    def test_remove_empty_block(self):
        fn = self._two_block_fn()
        mid = fn.insert_block_on_edge("a", "b")
        fn.remove_empty_block(mid.label)
        assert fn.edges() == [("a", "b")]
        assert mid.label not in fn.blocks

    def test_remove_nonempty_block_rejected(self):
        fn = self._two_block_fn()
        mid = fn.insert_block_on_edge("a", "b")
        mid.instrs.append(_add("x", "p", "p"))
        with pytest.raises(ValueError):
            fn.remove_empty_block(mid.label)

    def test_remove_start_rejected(self):
        fn = self._two_block_fn()
        with pytest.raises(ValueError):
            fn.remove_empty_block("a")

    def test_rpo_starts_at_start(self, loop_fn):
        order = loop_fn.rpo()
        assert order[0] == loop_fn.start_label
        index = {label: i for i, label in enumerate(order)}
        # RPO property for this reducible CFG: loop header precedes body.
        assert index["head"] < index["body"]

    def test_rpo_covers_reachable(self, loop_fn):
        assert set(loop_fn.rpo()) == set(loop_fn.blocks)

    def test_clone_deep(self, loop_fn):
        other = loop_fn.clone()
        other.blocks["body"].instrs.clear()
        assert len(loop_fn.blocks["body"].instrs) > 0

    def test_clone_label_counter_fresh(self, loop_fn):
        other = loop_fn.clone()
        label = other.new_label("fix")
        assert label not in loop_fn.blocks

    def test_variables_include_params(self):
        fn = self._two_block_fn()
        assert "p" in fn.variables()

    def test_instr_count(self, loop_fn):
        assert loop_fn.instr_count() == sum(
            len(b.instrs) for b in loop_fn.blocks.values()
        )


class TestBuilder:
    def test_start_has_no_preds(self, loop_fn):
        assert loop_fn.predecessors_map()[loop_fn.start_label] == []

    def test_stop_has_no_succs(self, loop_fn):
        assert loop_fn.blocks[loop_fn.stop_label].succ_labels == []

    def test_ret_routes_to_stop(self, loop_fn):
        assert loop_fn.blocks["done"].succ_labels == ["stop"]

    def test_fallthrough_linking(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", 1)
        b.block("two")  # implicit fallthrough from one
        b.ret("x")
        fn = b.finish()
        assert fn.blocks["one"].succ_labels == ["two"]

    def test_emit_after_terminator_rejected(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", 1)
        b.br("one")
        with pytest.raises(RuntimeError):
            b.const("y", 2)

    def test_emit_without_block_rejected(self):
        b = FunctionBuilder("f")
        with pytest.raises(RuntimeError):
            b.const("x", 1)

    def test_finish_twice_rejected(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.ret()
        b.finish()
        with pytest.raises(RuntimeError):
            b.finish()

    def test_empty_function_rejected(self):
        with pytest.raises(RuntimeError):
            FunctionBuilder("f").finish()

    def test_addi_materializes_constant(self):
        b = FunctionBuilder("f")
        b.block("one")
        b.const("x", 1)
        b.addi("y", "x", 5)
        b.ret("y")
        fn = b.finish()
        ops = [i.op for i in fn.blocks["one"].instrs]
        from repro.ir.instructions import Opcode

        assert ops.count(Opcode.CONST) == 2
