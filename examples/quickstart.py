"""Quickstart: build a function, allocate registers, inspect the result.

Run with::

    python examples/quickstart.py
"""

from repro.core import HierarchicalAllocator
from repro.ir import FunctionBuilder, format_function
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function


def build_sum_of_squares():
    """sum(A[i]^2 for i in range(n)) in the toy IR."""
    b = FunctionBuilder("sum_squares", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("acc", 0)
    b.const("one", 1)
    b.br("head")
    b.block("head")
    b.cmplt("more", "i", "n")
    b.cbr("more", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.mul("sq", "v", "v")
    b.add("acc", "acc", "sq")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("acc")
    return b.finish()


def main():
    fn = build_sum_of_squares()
    print("--- input program (virtual registers) ---")
    print(format_function(fn))

    # A workload pairs the program with concrete inputs: the pipeline runs
    # the original and the allocated program on them and verifies that
    # observable behaviour is identical.
    workload = Workload(
        fn, args={"n": 5}, arrays={"A": [1, 2, 3, 4, 5]}, name="quickstart"
    )
    machine = Machine.simple(3)  # three physical registers: R0..R2
    allocator = HierarchicalAllocator()
    result = compile_function(workload, allocator, machine)

    print(f"--- allocated program ({machine.num_registers} registers) ---")
    print(format_function(result.fn))

    print("--- statistics ---")
    print(f"returned value:        {result.allocated_run.returned[0]}")
    print(f"dynamic spill loads:   {result.allocated_run.spill_loads}")
    print(f"dynamic spill stores:  {result.allocated_run.spill_stores}")
    print(f"register moves:        {result.moves}")
    print(f"tiles in the tree:     {result.stats.extra['tile_count']}")
    print(f"largest tile graph:    {result.stats.max_graph_nodes} nodes")
    print()
    print("tile tree:")
    print(allocator.last_context.tree.format())


if __name__ == "__main__":
    main()
