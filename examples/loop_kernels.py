"""Allocate the numeric-kernel suite with every allocator.

A miniature of bench E4: dynamic spill traffic per kernel, per allocator,
per register count.  Run with::

    python examples/loop_kernels.py [registers ...]
"""

import sys

from repro.allocators import (
    BriggsAllocator,
    ChaitinAllocator,
    LocalAllocator,
    NaiveMemoryAllocator,
)
from repro.core import HierarchicalAllocator
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.kernels import all_kernel_workloads

ALLOCATORS = [
    HierarchicalAllocator,
    ChaitinAllocator,
    BriggsAllocator,
    LocalAllocator,
    NaiveMemoryAllocator,
]


def main(register_counts):
    names = [cls.name for cls in ALLOCATORS]
    header = f"{'workload':14} {'R':>3}  " + "  ".join(
        f"{n:>12}" for n in names
    )
    for registers in register_counts:
        machine = Machine.simple(registers)
        print(header)
        for workload in all_kernel_workloads(10):
            cells = []
            for allocator_cls in ALLOCATORS:
                result = compile_function(workload, allocator_cls(), machine)
                overhead = result.spill_refs + result.moves
                cells.append(f"{overhead:>12}")
            print(f"{workload.label():14} {registers:>3}  " + "  ".join(cells))
        print()


if __name__ == "__main__":
    counts = [int(a) for a in sys.argv[1:]] or [4, 8]
    main(counts)
