"""Walk through the paper's Figure 1 example in detail.

Prints the tile tree, each tile's bottom-up allocation, the final
register/memory locations per tile, the placed spill code, and a
side-by-side comparison against Chaitin -- reproducing the paper's central
illustration: g2 spilled around the first loop, g1 around the second, and
no memory traffic inside either loop.

Run with::

    python examples/figure1_walkthrough.py
"""

from repro.allocators import ChaitinAllocator
from repro.core import MEM, HierarchicalAllocator
from repro.ir import format_function
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import FIGURE1_REGISTERS, figure1_workload


def spill_sites(fn):
    sites = {}
    for label, block in fn.blocks.items():
        ops = [
            i for i in block.instrs
            if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
        ]
        if ops:
            sites[label] = ops
    return sites


def main():
    workload = figure1_workload(10)
    machine = Machine.simple(FIGURE1_REGISTERS)

    print("--- the Figure 1 program ---")
    print(format_function(workload.fn))

    allocator = HierarchicalAllocator()
    hier = compile_function(workload, allocator, machine)
    ctx = allocator.last_context
    allocations = allocator.last_allocations

    print("--- tile tree (paper's T1/T2 structure) ---")
    print(ctx.tree.format())
    print()

    print("--- per-tile locations of the four interesting variables ---")
    for tile in ctx.tree.preorder():
        alloc = allocations[tile.tid]
        cells = []
        for var in ("g1", "g2", "t1", "t2"):
            loc = alloc.phys.get(var)
            if loc is None:
                continue
            cells.append(f"{var}={'MEM' if loc == MEM else loc}")
        if cells:
            own = ",".join(sorted(tile.own_blocks()))
            print(f"  tile#{tile.tid:<3} [{tile.kind:5}] blocks({own}): "
                  + "  ".join(cells))
    print()

    print("--- where the hierarchical allocator placed spill code ---")
    for label, ops in sorted(spill_sites(hier.fn).items()):
        execs = hier.allocated_run.profile.block_counts.get(label, 0)
        names = ", ".join(
            f"{o.op.value} {o.imm}" for o in ops
        )
        print(f"  {label:8} (executed {execs:2d}x): {names}")
    print()

    chaitin = compile_function(workload, ChaitinAllocator(), machine)
    print("--- where Chaitin placed spill code ---")
    for label, ops in sorted(spill_sites(chaitin.fn).items()):
        execs = chaitin.allocated_run.profile.block_counts.get(label, 0)
        print(f"  {label:8} (executed {execs:2d}x): {len(ops)} spill instrs")
    print()

    print("--- dynamic memory references (n = 10 iterations/loop) ---")
    print(f"  hierarchical: {hier.spill_refs:3d} spill refs, "
          f"{hier.moves} moves")
    print(f"  chaitin:      {chaitin.spill_refs:3d} spill refs, "
          f"{chaitin.moves} moves")
    factor = chaitin.spill_refs / max(hier.spill_refs, 1)
    print(f"  improvement:  {factor:.1f}x fewer dynamic spill references")


if __name__ == "__main__":
    main()
