"""Write workloads in MiniLang, compile, allocate, measure.

Run with::

    python examples/minilang_demo.py
"""

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir import format_function
from repro.machine.target import Machine
from repro.minilang import compile_source
from repro.pipeline import Workload, compile_function

HISTOGRAM = """
# Histogram the values of A[0..n) into 8 buckets (B), then return the
# fullest bucket -- two loops with different register needs.
func histogram(n) {
    var i = 0;
    while (i < n) {
        var bucket = A[i] % 8;
        B[bucket] = B[bucket] + 1;
        i = i + 1;
    }
    var best = 0;
    var k = 0;
    while (k < 8) {
        var count = B[k];
        if (count > best) { best = count; }
        k = k + 1;
    }
    return best;
}
"""

GCD_SUM = """
# Sum of gcd(A[i], B[i]) over i -- a loop with a nested Euclid loop.
func gcd_sum(n) {
    var total = 0;
    var i = 0;
    while (i < n) {
        var a = A[i];
        var b = B[i];
        while (b != 0) {
            var t = b;
            b = a % b;
            a = t;
        }
        total = total + a;
        i = i + 1;
    }
    return total;
}
"""


def main():
    machine = Machine.simple(4)
    cases = [
        ("histogram", HISTOGRAM, {"n": 12},
         {"A": [3, 11, 19, 4, 12, 7, 3, 27, 8, 16, 5, 3], "B": [0] * 8}),
        ("gcd_sum", GCD_SUM, {"n": 4},
         {"A": [12, 18, 100, 7], "B": [8, 27, 75, 21]}),
    ]
    for name, source, args, arrays in cases:
        fn = compile_source(source)
        print(f"--- {name}: lowered IR ({len(fn.blocks)} blocks) ---")
        print(format_function(fn))
        workload = Workload(fn, args, arrays, name=name)
        hier = compile_function(workload, HierarchicalAllocator(), machine)
        chaitin = compile_function(workload, ChaitinAllocator(), machine)
        print(f"result: {hier.allocated_run.returned[0]}")
        print(f"dynamic spill refs: hierarchical={hier.spill_refs} "
              f"chaitin={chaitin.spill_refs}")
        print()


if __name__ == "__main__":
    main()
