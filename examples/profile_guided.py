"""Profile-guided allocation and shrink wrapping.

Demonstrates the paper's section-6 claims end to end:

1. the simulator doubles as a profiler;
2. measured frequencies slot straight into the spill metrics
   ("profiling information can be trivially incorporated");
3. on a quick-return function with callee-save registers, the profile
   reveals the cold slow path and the allocator shrink-wraps: the fast
   path executes *zero* callee-save saves/restores.

Run with::

    python examples/profile_guided.py
"""

from repro.allocators import ChaitinAllocator
from repro.analysis.frequency import frequencies_from_profile
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.calls import with_callee_save
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import hot_cold, quick_return


def skewed_hot_cold():
    n = 30
    data = [i * 7 + 1 for i in range(n)]  # hot path except...
    data[n // 2] = 7                      # ...exactly one cold hit
    return Workload(
        hot_cold(), {"n": n},
        {"A": data, "B": list(range(n)), "C": list(range(n))},
        name="hot_cold",
    )


def demo_hot_cold():
    print("=== hot/cold loop: static estimate vs measured profile ===")
    workload = skewed_hot_cold()
    machine = Machine.simple(4)

    static = compile_function(workload, HierarchicalAllocator(), machine)

    profile = simulate(
        workload.fn, args=workload.args, arrays=workload.arrays
    ).profile
    freq = frequencies_from_profile(workload.fn, profile)
    guided = compile_function(
        workload,
        HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
        machine,
    )
    print(f"  static estimate:  {static.spill_refs} dynamic spill refs")
    print(f"  profile guided:   {guided.spill_refs} dynamic spill refs")
    print()


def demo_shrink_wrapping():
    print("=== quick-return + callee-save registers (shrink wrapping) ===")
    machine = Machine.with_linkage(6, num_callee_save=2, num_args=2)
    fn = with_callee_save(quick_return(), machine)

    # Train on a 90% fast / 10% slow call mix.
    profile = None
    for n in [0] * 9 + [5]:
        run = simulate(
            fn, args={"n": n, "R4": 1, "R5": 2}, arrays={"A": [1, 2, 3, 4, 5]}
        )
        profile = run.profile if profile is None else profile.merge(run.profile)
    freq = frequencies_from_profile(fn, profile)

    hier = HierarchicalAllocator(HierarchicalConfig(frequencies=freq))
    chaitin = ChaitinAllocator()
    for n, label in ((0, "fast path"), (5, "slow path")):
        workload = Workload(
            fn, {"n": n, "R4": 1, "R5": 2},
            {"A": [1, 2, 3, 4, 5]}, name=label,
        )
        h = compile_function(workload, hier, machine)
        c = compile_function(workload, chaitin, machine)
        print(f"  {label}: hierarchical {h.spill_refs} spill refs, "
              f"chaitin (always-save) {c.spill_refs}")
    print()
    print("  The hierarchical allocator only saves the callee-save")
    print("  registers on entry to the region that actually uses them.")


def main():
    demo_hot_cold()
    demo_shrink_wrapping()


if __name__ == "__main__":
    main()
