# Collatz step counter in MiniLang.
# Try: python -m repro allocate examples/programs/collatz.ml --registers 3 --arg x=27
func collatz(x) {
    var steps = 0;
    while (x != 1) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps = steps + 1;
    }
    return steps;
}
