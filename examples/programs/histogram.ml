# Bucket histogram in MiniLang.
# Try: python -m repro run examples/programs/histogram.ml --arg n=6 --array A=3,11,4,3,9,3
func histogram(n) {
    var i = 0;
    while (i < n) {
        var bucket = A[i] % 8;
        B[bucket] = B[bucket] + 1;
        i = i + 1;
    }
    var best = 0;
    var k = 0;
    while (k < 8) {
        if (B[k] > best) { best = B[k]; }
        k = k + 1;
    }
    return best;
}
